(* Typed, timestamped event sink over a bounded Ring. Every payload
   is integers only so this library depends on nothing and every
   subsystem (engine, hw, vmm, guest, faults) can emit into it. *)

type category =
  | Sched
  | Credit
  | Vcrd
  | Gang
  | Ipi
  | Spin
  | Fault
  | Invariant

let cat_bit = function
  | Sched -> 1
  | Credit -> 2
  | Vcrd -> 4
  | Gang -> 8
  | Ipi -> 16
  | Spin -> 32
  | Fault -> 64
  | Invariant -> 128

let all_mask = 255

let cat_name = function
  | Sched -> "sched"
  | Credit -> "credit"
  | Vcrd -> "vcrd"
  | Gang -> "gang"
  | Ipi -> "ipi"
  | Spin -> "spin"
  | Fault -> "fault"
  | Invariant -> "invariant"

let categories = [ Sched; Credit; Vcrd; Gang; Ipi; Spin; Fault; Invariant ]

let mask_of_string s =
  if String.trim s = "all" then Ok all_mask
  else
    let parts =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun p -> p <> "")
    in
    if parts = [] then Error "empty category list"
    else
      List.fold_left
        (fun acc p ->
          match acc with
          | Error _ as e -> e
          | Ok m -> (
            match List.find_opt (fun c -> cat_name c = p) categories with
            | Some c -> Ok (m lor cat_bit c)
            | None -> Error (Printf.sprintf "unknown trace category %S" p)))
        (Ok 0) parts

type event =
  | Sched_switch of { pcpu : int; vcpu : int; domain : int }
  | Sched_idle of { pcpu : int }
  | Sched_block of { pcpu : int; vcpu : int; domain : int }
  | Credit_account of { vcpu : int; domain : int; credit : int; burned : int }
  | Vcrd_change of { domain : int; high : bool }
  | Gang_launch of { domain : int; pcpu : int; ipis : int; retry : bool }
  | Gang_ack of { domain : int; pcpu : int }
  | Gang_timeout of { domain : int; strikes : int }
  | Gang_retry of { domain : int; delay : int }
  | Gang_demote of { domain : int; until : int }
  | Ipi_sent of { src : int; dst : int; cross : bool }
  | Spin_overthreshold of {
      domain : int;
      vcpu : int;
      lock_id : int;
      wait : int;
      holder : int;  (** holder VCPU id at wait begin; -1 = unknown *)
    }
  | Fault_injected of { kind : int; pcpu : int; info : int }
  | Invariant_violation of { domain : int }
  | Ple_exit of { vcpu : int; domain : int }

(* Fault kind codes for [Fault_injected.kind]; the injector maps its
   variant onto these so obs stays dependency-free. *)
let fault_ipi_dropped = 0
let fault_ipi_delayed = 1
let fault_tick_suppressed = 2
let fault_vcrd_dropped = 3
let fault_vcrd_corrupted = 4
let fault_pcpu_stall = 5
let fault_pcpu_offline = 6
let fault_pcpu_restore = 7

let fault_kind_name = function
  | 0 -> "ipi_dropped"
  | 1 -> "ipi_delayed"
  | 2 -> "tick_suppressed"
  | 3 -> "vcrd_dropped"
  | 4 -> "vcrd_corrupted"
  | 5 -> "pcpu_stall"
  | 6 -> "pcpu_offline"
  | 7 -> "pcpu_restore"
  | _ -> "fault"

let category_of = function
  | Sched_switch _ | Sched_idle _ | Sched_block _ -> Sched
  | Credit_account _ -> Credit
  | Vcrd_change _ -> Vcrd
  | Gang_launch _ | Gang_ack _ | Gang_timeout _ | Gang_retry _ | Gang_demote _
    ->
    Gang
  | Ipi_sent _ -> Ipi
  | Spin_overthreshold _ | Ple_exit _ -> Spin
  | Fault_injected _ -> Fault
  | Invariant_violation _ -> Invariant

type entry = { at : int; ev : event }

type t = { mutable mask : int; mutable ring : entry Ring.t }

let default_cap = 1_000_000

let create () = { mask = 0; ring = Ring.create ~cap:0 }

let enable ?(cap = default_cap) t ~mask =
  t.mask <- mask land all_mask;
  if Ring.capacity t.ring <> cap then t.ring <- Ring.create ~cap

let disable t = t.mask <- 0

let mask t = t.mask

(* The hot-path guard: call sites do
     if Trace.on tr Cat then Trace.emit tr ~now ev
   so with tracing off the cost is one load + mask + branch and the
   event payload is never allocated. *)
let on t cat = t.mask land cat_bit cat <> 0

let emit t ~now ev = Ring.push t.ring { at = now; ev }

let entries t = Ring.to_list t.ring

let length t = Ring.length t.ring

let dropped t = Ring.dropped t.ring

let clear t = Ring.clear t.ring

(* ----- rendering helpers shared by the exporters ----- *)

let event_name = function
  | Sched_switch _ -> "sched_switch"
  | Sched_idle _ -> "sched_idle"
  | Sched_block _ -> "sched_block"
  | Credit_account _ -> "credit_account"
  | Vcrd_change _ -> "vcrd_change"
  | Gang_launch _ -> "gang_launch"
  | Gang_ack _ -> "gang_ack"
  | Gang_timeout _ -> "gang_timeout"
  | Gang_retry _ -> "gang_retry"
  | Gang_demote _ -> "gang_demote"
  | Ipi_sent _ -> "ipi_sent"
  | Spin_overthreshold _ -> "spin_overthreshold"
  | Fault_injected _ -> "fault_injected"
  | Invariant_violation _ -> "invariant_violation"
  | Ple_exit _ -> "ple_exit"

(* (field, value) pairs, stable order, for CSV/JSONL args. *)
let event_fields = function
  | Sched_switch { pcpu; vcpu; domain } ->
    [ ("pcpu", pcpu); ("vcpu", vcpu); ("domain", domain) ]
  | Sched_idle { pcpu } -> [ ("pcpu", pcpu) ]
  | Sched_block { pcpu; vcpu; domain } ->
    [ ("pcpu", pcpu); ("vcpu", vcpu); ("domain", domain) ]
  | Credit_account { vcpu; domain; credit; burned } ->
    [ ("vcpu", vcpu); ("domain", domain); ("credit", credit);
      ("burned", burned) ]
  | Vcrd_change { domain; high } ->
    [ ("domain", domain); ("high", if high then 1 else 0) ]
  | Gang_launch { domain; pcpu; ipis; retry } ->
    [ ("domain", domain); ("pcpu", pcpu); ("ipis", ipis);
      ("retry", if retry then 1 else 0) ]
  | Gang_ack { domain; pcpu } -> [ ("domain", domain); ("pcpu", pcpu) ]
  | Gang_timeout { domain; strikes } ->
    [ ("domain", domain); ("strikes", strikes) ]
  | Gang_retry { domain; delay } -> [ ("domain", domain); ("delay", delay) ]
  | Gang_demote { domain; until } -> [ ("domain", domain); ("until", until) ]
  | Ipi_sent { src; dst; cross } ->
    [ ("src", src); ("dst", dst); ("cross", if cross then 1 else 0) ]
  | Spin_overthreshold { domain; vcpu; lock_id; wait; holder } ->
    [ ("domain", domain); ("vcpu", vcpu); ("lock_id", lock_id);
      ("wait", wait); ("holder", holder) ]
  | Fault_injected { kind; pcpu; info } ->
    [ ("kind", kind); ("pcpu", pcpu); ("info", info) ]
  | Invariant_violation { domain } -> [ ("domain", domain) ]
  | Ple_exit { vcpu; domain } -> [ ("vcpu", vcpu); ("domain", domain) ]

(* ----- flat exporters ----- *)

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time,category,event,args\n";
  Ring.iter t.ring (fun { at; ev } ->
      let args =
        event_fields ev
        |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
        |> String.concat ";"
      in
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s\n" at
           (cat_name (category_of ev))
           (event_name ev) args));
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create 4096 in
  Ring.iter t.ring (fun { at; ev } ->
      Buffer.add_string buf (Printf.sprintf "{\"t\":%d" at);
      Buffer.add_string buf
        (Printf.sprintf ",\"cat\":\"%s\",\"ev\":\"%s\""
           (cat_name (category_of ev))
           (event_name ev));
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf ",\"%s\":%d" k v))
        (event_fields ev);
      Buffer.add_string buf "}\n");
  Buffer.contents buf

(* ----- Chrome trace_event JSON -----

   One pid per scenario; tid = pcpu index for PCPU tracks and
   [vm_tid_base + domain] for per-VM tracks. PCPU occupancy is
   reconstructed into "X" complete events from
   Sched_switch/Sched_idle/Sched_block; everything else is an "i"
   instant on the owning track. ts is microseconds (cycles / freq *
   1e6) as the format requires. *)

let vm_tid_base = 100

let us_of ~freq_hz cycles = float_of_int cycles /. float_of_int freq_hz *. 1e6

let buf_add_meta buf ~pid ~tid name =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
        \"args\":{\"name\":\"%s\"}}"
       pid tid name)

let buf_add_complete buf ~pid ~tid ~name ~ts ~dur ~args =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\
        \"dur\":%.3f%s}"
       name pid tid ts dur args)

let buf_add_instant buf ~pid ~tid ~name ~ts ~args =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\
        \"ts\":%.3f%s}"
       name pid tid ts args)

let args_json fields =
  match fields with
  | [] -> ""
  | _ ->
    ",\"args\":{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v) fields)
    ^ "}"

(* Append the trace_event objects for [t] into [buf] (comma-separated,
   no surrounding brackets) so multi-scenario exports can concatenate
   tracks into a single traceEvents array. *)
let chrome_events_into buf ?(pid = 1) ?(process_name = "asman")
    ?(vm_names = []) ~freq_hz ~pcpus t =
  let first = ref (Buffer.length buf = 0) in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  sep ();
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\
        \"%s\"}}"
       pid process_name);
  for p = 0 to pcpus - 1 do
    sep ();
    buf_add_meta buf ~pid ~tid:p (Printf.sprintf "pcpu %d" p)
  done;
  let vm_name d =
    match List.assoc_opt d vm_names with
    | Some n -> n
    | None -> Printf.sprintf "dom%d" d
  in
  let doms =
    List.sort_uniq compare
      (List.map fst vm_names
      @ Ring.fold t.ring ~init:[] ~f:(fun acc { ev; _ } ->
            match ev with
            | Sched_switch { domain; _ }
            | Sched_block { domain; _ }
            | Vcrd_change { domain; _ }
            | Gang_launch { domain; _ }
            | Spin_overthreshold { domain; _ } ->
              domain :: acc
            | _ -> acc))
  in
  List.iter
    (fun d ->
      sep ();
      buf_add_meta buf ~pid ~tid:(vm_tid_base + d)
        (Printf.sprintf "vm %s" (vm_name d)))
    doms;
  (* Open slice per PCPU: what ran there since when. *)
  let running = Array.make (max pcpus 1) None in
  let close_slice p ~until =
    match if p < Array.length running then running.(p) else None with
    | None -> ()
    | Some (vcpu, domain, since) ->
      running.(p) <- None;
      sep ();
      buf_add_complete buf ~pid ~tid:p
        ~name:(Printf.sprintf "%s/v%d" (vm_name domain) vcpu)
        ~ts:(us_of ~freq_hz since)
        ~dur:(us_of ~freq_hz (until - since))
        ~args:(args_json [ ("vcpu", vcpu); ("domain", domain) ])
  in
  let last_t = ref 0 in
  Ring.iter t.ring (fun { at; ev } ->
      last_t := max !last_t at;
      let instant ~tid =
        sep ();
        buf_add_instant buf ~pid ~tid ~name:(event_name ev)
          ~ts:(us_of ~freq_hz at)
          ~args:(args_json (event_fields ev))
      in
      match ev with
      | Sched_switch { pcpu; vcpu; domain } ->
        close_slice pcpu ~until:at;
        if pcpu >= 0 && pcpu < Array.length running then
          running.(pcpu) <- Some (vcpu, domain, at)
      | Sched_idle { pcpu } | Sched_block { pcpu; _ } ->
        close_slice pcpu ~until:at
      | Credit_account { domain; _ }
      | Vcrd_change { domain; _ }
      | Spin_overthreshold { domain; _ }
      | Invariant_violation { domain }
      | Ple_exit { domain; _ }
      | Gang_timeout { domain; _ }
      | Gang_retry { domain; _ }
      | Gang_demote { domain; _ } ->
        instant ~tid:(vm_tid_base + domain)
      | Gang_launch { pcpu; _ } | Gang_ack { pcpu; _ } -> instant ~tid:pcpu
      | Ipi_sent { src; _ } -> instant ~tid:src
      | Fault_injected { pcpu; _ } -> instant ~tid:(max pcpu 0));
  for p = 0 to pcpus - 1 do
    close_slice p ~until:!last_t
  done

let to_chrome_json ?pid ?process_name ?vm_names ~freq_hz ~pcpus t =
  let buf = Buffer.create 65536 in
  chrome_events_into buf ?pid ?process_name ?vm_names ~freq_hz ~pcpus t;
  let body = Buffer.contents buf in
  Printf.sprintf "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\"}\n" body
