(* Per-PCPU scheduling timeline derived from a trace: for each PCPU a
   gantt row of which VCPU ran when (gaps = idle/stall). Feeds the LHP
   classifier, which needs "was VCPU v descheduled during [a,b]?". *)

type segment = { pcpu : int; vcpu : int; domain : int; start : int; stop : int }

type t = { pcpus : int; rows : segment list array (* per PCPU, time order *) }

let of_entries ?stop_at ~pcpus entries =
  let rows = Array.make (max pcpus 1) [] in
  let running = Array.make (max pcpus 1) None in
  let last_t = ref 0 in
  let close p ~until =
    match running.(p) with
    | None -> ()
    | Some (vcpu, domain, since) ->
      running.(p) <- None;
      if until > since then
        rows.(p) <- { pcpu = p; vcpu; domain; start = since; stop = until }
                    :: rows.(p)
  in
  List.iter
    (fun { Trace.at; ev } ->
      last_t := max !last_t at;
      match ev with
      | Trace.Sched_switch { pcpu; vcpu; domain } ->
        if pcpu >= 0 && pcpu < Array.length running then begin
          close pcpu ~until:at;
          running.(pcpu) <- Some (vcpu, domain, at)
        end
      | Trace.Sched_idle { pcpu } | Trace.Sched_block { pcpu; _ } ->
        if pcpu >= 0 && pcpu < Array.length running then close pcpu ~until:at
      | _ -> ())
    entries;
  let horizon = match stop_at with Some s -> s | None -> !last_t in
  for p = 0 to Array.length running - 1 do
    close p ~until:(max horizon !last_t)
  done;
  Array.iteri (fun p segs -> rows.(p) <- List.rev segs) rows;
  { pcpus = max pcpus 1; rows }

let segments t =
  Array.to_list t.rows |> List.concat
  |> List.sort (fun a b ->
         match compare a.start b.start with
         | 0 -> compare a.pcpu b.pcpu
         | c -> c)

let running_intervals t ~vcpu =
  segments t
  |> List.filter_map (fun s ->
         if s.vcpu = vcpu then Some (s.start, s.stop) else None)

(* Cycles in [from_, until] during which [vcpu] was NOT on any PCPU.
   Intervals are disjoint (a VCPU runs on one PCPU at a time), so the
   descheduled time is the window minus the summed overlaps. *)
let descheduled_in t ~vcpu ~from_ ~until =
  if until <= from_ then 0
  else
    let on_cpu =
      List.fold_left
        (fun acc (a, b) ->
          let lo = max a from_ and hi = min b until in
          if hi > lo then acc + (hi - lo) else acc)
        0
        (running_intervals t ~vcpu)
    in
    max 0 (until - from_ - on_cpu)

let to_text ?vm_names t =
  let vm_name d =
    match Option.bind vm_names (List.assoc_opt d) with
    | Some n -> n
    | None -> Printf.sprintf "dom%d" d
  in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun p segs ->
      Buffer.add_string buf (Printf.sprintf "pcpu %d:\n" p);
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "  [%12d, %12d) %s/v%d (%d cycles)\n" s.start
               s.stop (vm_name s.domain) s.vcpu (s.stop - s.start)))
        segs)
    t.rows;
  Buffer.contents buf
