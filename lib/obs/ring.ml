(* Bounded ring buffer with drop accounting. The backing array is
   allocated lazily on the first push, so a created-but-never-used
   ring (tracing compiled in but disabled) costs two words. *)

type 'a t = {
  cap : int;
  mutable buf : 'a array;  (** [[||]] until the first push *)
  mutable start : int;  (** index of the oldest element *)
  mutable len : int;
  mutable dropped : int;
}

let create ~cap =
  if cap < 0 then invalid_arg "Ring.create: negative capacity";
  { cap; buf = [||]; start = 0; len = 0; dropped = 0 }

let capacity t = t.cap

let length t = t.len

let dropped t = t.dropped

let is_empty t = t.len = 0

let push t x =
  if t.cap = 0 then t.dropped <- t.dropped + 1
  else begin
    if Array.length t.buf = 0 then t.buf <- Array.make t.cap x;
    if t.len < t.cap then begin
      t.buf.((t.start + t.len) mod t.cap) <- x;
      t.len <- t.len + 1
    end
    else begin
      (* Full: overwrite the oldest element. *)
      t.buf.(t.start) <- x;
      t.start <- (t.start + 1) mod t.cap;
      t.dropped <- t.dropped + 1
    end
  end

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.((t.start + i) mod t.cap)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun x -> acc := f !acc x);
  !acc

let to_list t =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (t.buf.((t.start + i) mod t.cap) :: acc)
  in
  go (t.len - 1) []

(* Clearing keeps the drop count: it tallies lifetime losses, the
   semantics Monitor.trace_dropped has always had across window
   resets. *)
let clear t =
  t.start <- 0;
  t.len <- 0
