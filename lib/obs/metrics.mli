(** Metrics registry: named counters / gauges / histograms registered
    by subsystem, snapshotted in one call.

    One registry per simulation (owned by the Vmm), never global —
    parallel Pool jobs each build their own, so snapshots are
    deterministic at any worker count. *)

type key = private { subsystem : string; name : string; vm : string option }

val key_to_string : key -> string
(** ["subsystem/name"] or ["subsystem/name{vm=V}"]. *)

type counter

val incr : ?by:int -> counter -> unit

val value : counter -> int
(** Current count — lets owners keep thin read accessors over
    registry-backed counters. *)

type histogram

val observe : histogram -> int -> unit
(** Add a value; bucketed by log2. *)

type t

val create : unit -> t

val counter : t -> subsystem:string -> ?vm:string -> name:string -> unit -> counter
(** Register and return a fresh counter. Re-registering a key
    replaces the previous instrument. *)

val gauge : t -> subsystem:string -> ?vm:string -> name:string -> (unit -> int) -> unit
(** Register a gauge: the closure is evaluated at snapshot time, so
    existing subsystem counters join the registry without moving. *)

val histogram : t -> subsystem:string -> ?vm:string -> name:string -> unit -> histogram

(** {1 Snapshots} *)

type value =
  | Int of int
  | Hist of { count : int; sum : int; max : int; buckets : int array }

type sample = { key : key; value : value }

type snapshot = sample list
(** Sorted by (subsystem, name, vm) — deterministic regardless of
    registration order. *)

val snapshot : t -> snapshot

val diff : base:snapshot -> snapshot -> snapshot
(** Pointwise [snap - base] on Int samples (keys missing from [base]
    pass through); histograms pass through unchanged. *)

val find : snapshot -> subsystem:string -> ?vm:string -> name:string -> unit -> int option

val get : snapshot -> subsystem:string -> ?vm:string -> name:string -> unit -> int
(** [find] defaulting to 0. *)

val to_text : snapshot -> string

val to_json : snapshot -> string
