(** Minimal JSON syntax validator — lets tests and the CI trace smoke
    job check that exported traces and metrics snapshots parse,
    without a JSON library dependency. *)

val validate : string -> (unit, string) result
(** [Ok ()] iff the whole string is one well-formed JSON value
    (ignoring surrounding whitespace). *)

val validate_html : string -> (unit, string) result
(** Sanity checks for a self-contained HTML export (the registry's
    trend report): non-void tags must balance, and the document must
    carry no external references — no [http(s)://] or [file://]
    URLs, no [<link>], no [src=] attributes, no [@import]. Not a
    full HTML parser: it validates what the exporters emit. *)
