(** Minimal JSON syntax validator — lets tests and the CI trace smoke
    job check that exported traces and metrics snapshots parse,
    without a JSON library dependency. *)

val validate : string -> (unit, string) result
(** [Ok ()] iff the whole string is one well-formed JSON value
    (ignoring surrounding whitespace). *)
