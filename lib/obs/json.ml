(* Minimal JSON syntax validator — enough for tests and the CI trace
   smoke job to check that exported traces/metrics parse, without
   pulling in a JSON library. Validates structure only; numbers are
   accepted liberally (any [-+0-9.eE]+ run that float_of_string
   accepts). *)

type state = { s : string; mutable pos : int }

exception Bad of int * string

let error st msg = raise (Bad (st.pos, msg))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected %c, got %c" c c')
  | None -> error st (Printf.sprintf "expected %c, got end of input" c)

let literal st word =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then st.pos <- st.pos + n
  else error st (Printf.sprintf "expected %s" word)

let string_lit st =
  expect st '"';
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
        advance st;
        go ()
      | Some 'u' ->
        advance st;
        for _ = 1 to 4 do
          match peek st with
          | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance st
          | _ -> error st "bad \\u escape"
        done;
        go ()
      | _ -> error st "bad escape")
    | Some c when Char.code c < 0x20 -> error st "control char in string"
    | Some _ ->
      advance st;
      go ()
  in
  go ()

let number st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then error st "expected a value";
  let tok = String.sub st.s start (st.pos - start) in
  if float_of_string_opt tok = None then
    error st (Printf.sprintf "bad number %S" tok)

let rec value st =
  skip_ws st;
  match peek st with
  | Some '{' -> obj st
  | Some '[' -> arr st
  | Some '"' -> string_lit st
  | Some 't' -> literal st "true"
  | Some 'f' -> literal st "false"
  | Some 'n' -> literal st "null"
  | Some _ -> number st
  | None -> error st "expected a value"

and obj st =
  expect st '{';
  skip_ws st;
  match peek st with
  | Some '}' -> advance st
  | _ ->
    let rec members () =
      skip_ws st;
      string_lit st;
      skip_ws st;
      expect st ':';
      value st;
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        members ()
      | Some '}' -> advance st
      | _ -> error st "expected , or } in object"
    in
    members ()

and arr st =
  expect st '[';
  skip_ws st;
  match peek st with
  | Some ']' -> advance st
  | _ ->
    let rec elements () =
      value st;
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        elements ()
      | Some ']' -> advance st
      | _ -> error st "expected , or ] in array"
    in
    elements ()

let validate s =
  let st = { s; pos = 0 } in
  match
    value st;
    skip_ws st;
    peek st
  with
  | None -> Ok ()
  | Some c -> Error (Printf.sprintf "trailing %c at offset %d" c st.pos)
  | exception Bad (pos, msg) ->
    Error (Printf.sprintf "%s at offset %d" msg pos)

(* ----- self-contained HTML checks ----- *)

(* The registry's HTML report must be a single self-contained file.
   This is deliberately not an HTML parser: it tokenizes tags well
   enough to (a) match open/close tags for non-void elements and
   (b) reject anything that smells like an external reference. *)

let void_tags =
  [ "meta"; "br"; "hr"; "img"; "input"; "area"; "base"; "col"; "embed";
    "source"; "track"; "wbr" ]

let lowercase_contains ~needle hay =
  let hay = String.lowercase_ascii hay in
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let validate_html s =
  let n = String.length s in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  (* External-reference scan over the whole document. *)
  let banned =
    [ "http://"; "https://"; "file://"; "<link"; "@import"; " src=" ]
  in
  match List.find_opt (fun b -> lowercase_contains ~needle:b s) banned with
  | Some b -> err "external reference: document contains %S" b
  | None ->
    (* Tag balancing. Skips comments; <script>/<style> bodies are
       consumed verbatim up to their close tag. *)
    let stack = ref [] in
    let rec tag_name i acc =
      if i < n then
        match s.[i] with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '!' | '-' ->
          tag_name (i + 1) (acc ^ String.make 1 (Char.lowercase_ascii s.[i]))
        | _ -> (acc, i)
      else (acc, i)
    in
    let rec find_char i c = if i >= n then n else if s.[i] = c then i else find_char (i + 1) c in
    let find_sub i sub =
      let m = String.length sub in
      let rec go i =
        if i + m > n then n
        else if String.lowercase_ascii (String.sub s i m) = sub then i
        else go (i + 1)
      in
      go i
    in
    let rec scan i =
      if i >= n then
        match !stack with
        | [] -> Ok ()
        | t :: _ -> err "unclosed <%s>" t
      else if s.[i] <> '<' then scan (i + 1)
      else if i + 3 < n && String.sub s i 4 = "<!--" then
        let close = find_sub (i + 4) "-->" in
        if close = n then err "unterminated comment" else scan (close + 3)
      else if i + 1 < n && s.[i + 1] = '/' then begin
        let name, j = tag_name (i + 2) "" in
        match !stack with
        | top :: rest when top = name ->
          stack := rest;
          scan (find_char j '>' + 1)
        | top :: _ -> err "</%s> closes <%s>" name top
        | [] -> err "</%s> with nothing open" name
      end
      else begin
        let name, j = tag_name (i + 1) "" in
        let close = find_char j '>' in
        if close = n then err "unterminated tag <%s" name
        else if name = "" || name.[0] = '!' then scan (close + 1)
        else if s.[close - 1] = '/' || List.mem name void_tags then
          scan (close + 1)
        else if name = "script" || name = "style" then begin
          let endtag = "</" ^ name in
          let stop = find_sub (close + 1) endtag in
          if stop = n then err "unterminated <%s>" name
          else scan (find_char (stop + String.length endtag) '>' + 1)
        end
        else begin
          stack := name :: !stack;
          scan (close + 1)
        end
      end
    in
    scan 0
