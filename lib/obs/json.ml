(* Minimal JSON syntax validator — enough for tests and the CI trace
   smoke job to check that exported traces/metrics parse, without
   pulling in a JSON library. Validates structure only; numbers are
   accepted liberally (any [-+0-9.eE]+ run that float_of_string
   accepts). *)

type state = { s : string; mutable pos : int }

exception Bad of int * string

let error st msg = raise (Bad (st.pos, msg))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected %c, got %c" c c')
  | None -> error st (Printf.sprintf "expected %c, got end of input" c)

let literal st word =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then st.pos <- st.pos + n
  else error st (Printf.sprintf "expected %s" word)

let string_lit st =
  expect st '"';
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
        advance st;
        go ()
      | Some 'u' ->
        advance st;
        for _ = 1 to 4 do
          match peek st with
          | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance st
          | _ -> error st "bad \\u escape"
        done;
        go ()
      | _ -> error st "bad escape")
    | Some c when Char.code c < 0x20 -> error st "control char in string"
    | Some _ ->
      advance st;
      go ()
  in
  go ()

let number st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then error st "expected a value";
  let tok = String.sub st.s start (st.pos - start) in
  if float_of_string_opt tok = None then
    error st (Printf.sprintf "bad number %S" tok)

let rec value st =
  skip_ws st;
  match peek st with
  | Some '{' -> obj st
  | Some '[' -> arr st
  | Some '"' -> string_lit st
  | Some 't' -> literal st "true"
  | Some 'f' -> literal st "false"
  | Some 'n' -> literal st "null"
  | Some _ -> number st
  | None -> error st "expected a value"

and obj st =
  expect st '{';
  skip_ws st;
  match peek st with
  | Some '}' -> advance st
  | _ ->
    let rec members () =
      skip_ws st;
      string_lit st;
      skip_ws st;
      expect st ':';
      value st;
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        members ()
      | Some '}' -> advance st
      | _ -> error st "expected , or } in object"
    in
    members ()

and arr st =
  expect st '[';
  skip_ws st;
  match peek st with
  | Some ']' -> advance st
  | _ ->
    let rec elements () =
      value st;
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        elements ()
      | Some ']' -> advance st
      | _ -> error st "expected , or ] in array"
    in
    elements ()

let validate s =
  let st = { s; pos = 0 } in
  match
    value st;
    skip_ws st;
    peek st
  with
  | None -> Ok ()
  | Some c -> Error (Printf.sprintf "trailing %c at offset %d" c st.pos)
  | exception Bad (pos, msg) ->
    Error (Printf.sprintf "%s at offset %d" msg pos)
