open Sim_guest

(* All three attacks are pure compute/sleep programs — fully
   deterministic, no random chunks — so a given scenario seed always
   produces the same interleaving. Durations are derived from the
   host's accounting-tick interval ([slot_cycles]); the programs
   restart forever.

   The self-alignment trick shared by all of them: on a busy host a
   waking attacker sits in the runqueue until its PCPU's next
   slice-boundary reschedule, and reschedules coincide with credit
   ticks (the slot handler debits the *previous* occupant, then
   dispatches). A burst started at a reschedule therefore opens a full
   tick-free slot; blocking before the slot closes escapes the sampled
   debit entirely. The [lead] sleep skips the only misaligned dispatch
   — the scenario's t=0 start, which lands mid-slot relative to the
   staggered tick phase — so even the first real burst is aligned.

   Each attack therefore runs at most one aligned burst per slice.
   With a burst of nearly one slot that is slot/slice of the machine —
   far beyond a low-weight VM's entitlement under sampled accounting
   (never billed, credit pegged at the cap, wins every reschedule),
   and automatically contained under precise accounting (every burst
   is billed span-exactly, so the attacker goes over-credit and waits
   out its debt like any honest VM). *)

let lead slot_cycles = slot_cycles * 3 / 5

(* Long enough that no measurement window ever exhausts it; the
   steady-state loop must live inside one program round so the lead
   sleep applies once, not once per thread restart. *)
let steady_rounds = 1_000_000

let attack_workload ~name ~threads ~ops =
  {
    Workload.name;
    kind = Workload.Throughput;
    threads =
      List.init threads (fun i ->
          { Workload.affinity = i; program = Program.make ops; restart = true });
    barriers = [];
    semaphores = [];
  }

let dodge_burst slot_cycles = slot_cycles * 19 / 20
let dodge_sleep slot_cycles = slot_cycles / 5

let tick_dodge ?(threads = 1) ~slot_cycles () =
  if slot_cycles < 32 then invalid_arg "Attack.tick_dodge: slot_cycles";
  let body =
    [
      Program.Compute (dodge_burst slot_cycles);
      Program.Sleep (dodge_sleep slot_cycles);
      Program.Mark;
    ]
  in
  attack_workload ~name:"attack-dodge" ~threads
    ~ops:
      [
        Program.Sleep (lead slot_cycles); Program.Repeat (steady_rounds, body);
      ]

let steal_burst slot_cycles = slot_cycles / 2
let steal_sleep slot_cycles = slot_cycles / 5

let cycle_steal ?(threads = 1) ~slot_cycles () =
  if slot_cycles < 32 then invalid_arg "Attack.cycle_steal: slot_cycles";
  let body =
    [
      Program.Repeat
        ( 4,
          [
            Program.Compute (steal_burst slot_cycles);
            Program.Sleep (steal_sleep slot_cycles);
          ] );
      Program.Mark;
    ]
  in
  attack_workload ~name:"attack-steal" ~threads
    ~ops:
      [
        Program.Sleep (lead slot_cycles); Program.Repeat (steady_rounds, body);
      ]

let launder_burst slot_cycles = slot_cycles * 4 / 5
let launder_sleep slot_cycles = slot_cycles * 2 / 5
let launder_phase slot_cycles = slot_cycles / 2

let launder_half ?(threads = 1) ~slot_cycles ~phased () =
  if slot_cycles < 32 then invalid_arg "Attack.launder_half: slot_cycles";
  let body =
    [
      Program.Compute (launder_burst slot_cycles);
      Program.Sleep (launder_sleep slot_cycles);
      Program.Mark;
    ]
  in
  let first_sleep =
    lead slot_cycles + if phased then launder_phase slot_cycles else 0
  in
  attack_workload
    ~name:(if phased then "attack-launder-b" else "attack-launder-a")
    ~threads
    ~ops:[ Program.Sleep first_sleep; Program.Repeat (steady_rounds, body) ]

let launder_pair ?(threads = 1) ~slot_cycles () =
  ( launder_half ~threads ~slot_cycles ~phased:false (),
    launder_half ~threads ~slot_cycles ~phased:true () )

let is_attack (w : Workload.t) =
  match w.Workload.name with
  | "attack-dodge" | "attack-steal" | "attack-launder-a" | "attack-launder-b" ->
    true
  | _ -> false
