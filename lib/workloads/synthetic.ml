open Sim_guest

let compute_only ?(threads = 4) ?(chunks = 10) ~chunk_cycles () =
  let program =
    Program.make [ Program.Repeat (chunks, [ Program.Compute chunk_cycles ]) ]
  in
  {
    Workload.name = "compute-only";
    kind = Workload.Throughput;
    threads =
      List.init threads (fun i ->
          { Workload.affinity = i; program; restart = false });
    barriers = [];
    semaphores = [];
  }

let lock_storm ?(threads = 4) ?(rounds = 100) ~cs_cycles ~think_cycles () =
  let program =
    Program.make
      [
        Program.Repeat
          ( rounds,
            [
              Program.Compute_rand { mean = think_cycles; cv = 0.2 };
              Program.Lock 0;
              Program.Compute cs_cycles;
              Program.Unlock 0;
              Program.Mark;
            ] );
      ]
  in
  {
    Workload.name = "lock-storm";
    kind = Workload.Concurrent;
    threads =
      List.init threads (fun i ->
          { Workload.affinity = i; program; restart = false });
    barriers = [];
    semaphores = [];
  }

let barrier_loop ?(threads = 4) ?(rounds = 50) ~compute_cycles ~cv () =
  let program =
    Program.make
      [
        Program.Repeat
          ( rounds,
            [
              Program.Compute_rand { mean = compute_cycles; cv };
              Program.Barrier 0;
            ] );
      ]
  in
  {
    Workload.name = "barrier-loop";
    kind = Workload.Concurrent;
    threads =
      List.init threads (fun i ->
          { Workload.affinity = i; program; restart = false });
    barriers = [ (0, threads) ];
    semaphores = [];
  }

let ping_pong ~rounds ~compute_cycles =
  let a =
    Program.make
      [
        Program.Repeat
          ( rounds,
            [
              Program.Compute compute_cycles;
              Program.Sem_post 0;
              Program.Sem_wait 1;
            ] );
      ]
  in
  let b =
    Program.make
      [
        Program.Repeat
          ( rounds,
            [
              Program.Sem_wait 0;
              Program.Compute compute_cycles;
              Program.Sem_post 1;
            ] );
      ]
  in
  {
    Workload.name = "ping-pong";
    kind = Workload.Concurrent;
    threads =
      [
        { Workload.affinity = 0; program = a; restart = false };
        { Workload.affinity = 1; program = b; restart = false };
      ];
    barriers = [];
    semaphores = [ (0, 0); (1, 0) ];
  }

let random_program rng ~ops ~nlocks ~max_compute =
  if ops < 0 then invalid_arg "Synthetic.random_program: negative ops";
  if nlocks <= 0 then invalid_arg "Synthetic.random_program: nlocks";
  let rec build remaining acc =
    if remaining <= 0 then List.rev acc
    else begin
      let pick = Sim_engine.Rng.int rng 3 in
      match pick with
      | 0 | 1 ->
        let n = 1 + Sim_engine.Rng.int rng (max 1 max_compute) in
        build (remaining - 1) (Program.Compute n :: acc)
      | _ ->
        let l = Sim_engine.Rng.int rng nlocks in
        let cs = 1 + Sim_engine.Rng.int rng (max 1 (max_compute / 4)) in
        build (remaining - 1)
          (Program.Unlock l :: Program.Compute cs :: Program.Lock l :: acc)
    end
  in
  Program.make (build ops [])
