(** SPECjbb2005 model: W warehouse threads executing transactions
    against shared in-JVM data structures.

    A transaction is a compute chunk plus a handful of short critical
    sections on a small set of hot kernel locks (object pools, shared
    trees). No I/O, no network — as in the paper's setup, all three
    tiers live in one JVM. Throughput is measured in bops
    (transactions completed per wall-clock window via [Mark]); the
    SPECjbb score is the mean of the throughputs for warehouse counts
    >= the VCPU count. *)

type params = {
  warehouses : int;
  txn_compute : int;  (** cycles of compute per transaction *)
  txn_cv : float;
  locks_per_txn : int;
  cs_cycles : int;
  hot_locks : int;
  txns_per_round : int;
}

val default_params :
  freq:Sim_engine.Units.freq -> warehouses:int -> params
(** ~30 us transactions, 2 critical sections of ~2 us on a 4-lock hot
    set. Raises [Invalid_argument] if [warehouses <= 0]. *)

val workload : ?vcpus:int -> params -> Workload.t
(** Warehouse thread [i] is pinned to VCPU [i mod vcpus] (default 4).
    Threads restart forever; throughput is read from [Mark] counts. *)

val score : (int * float) list -> vcpus:int -> float
(** [score throughput_by_warehouses ~vcpus] is the SPECjbb score: the
    mean throughput over entries with warehouses >= vcpus. Raises
    [Invalid_argument] if no entry qualifies. *)
