(** Synthetic workloads for tests, property checks and examples. *)

val compute_only :
  ?threads:int -> ?chunks:int -> chunk_cycles:int -> unit -> Workload.t
(** Pure compute, one thread per VCPU index. *)

val lock_storm :
  ?threads:int ->
  ?rounds:int ->
  cs_cycles:int ->
  think_cycles:int ->
  unit ->
  Workload.t
(** Every thread hammers one shared lock: [think (jittered); lock;
    cs; unlock] per round. Maximum contention; exercises the handoff
    and lock-holder-preemption paths. *)

val barrier_loop :
  ?threads:int -> ?rounds:int -> compute_cycles:int -> cv:float -> unit -> Workload.t
(** Compute + barrier per round: the minimal concurrent workload. *)

val ping_pong : rounds:int -> compute_cycles:int -> Workload.t
(** Two threads alternating via a pair of semaphores — the blocking
    (non-spinning) synchronization path. *)

val random_program :
  Sim_engine.Rng.t ->
  ops:int ->
  nlocks:int ->
  max_compute:int ->
  Sim_guest.Program.t
(** A well-formed random program: compute chunks and properly paired
    lock/unlock sections drawn from [nlocks] locks. Never deadlocks
    (at most one lock held, consistent ordering). *)
