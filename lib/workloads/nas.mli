(** Synchronization-signature models of the NAS Parallel Benchmarks
    (OpenMP C versions, Class A), the paper's concurrent workloads.

    The numerics are irrelevant to the reproduction; what matters is
    each benchmark's {e synchronization signature}: how often its
    threads pass busy-wait barriers and contend on kernel locks, how
    long the critical sections are, and how balanced the compute
    phases are. The parameters below encode the well-known relative
    characters — EP is embarrassingly parallel (coarse phases, almost
    no sync), CG and MG synchronize very finely, LU's pipelined sweeps
    make it the most synchronization-bound, BT/SP/FT sit in between —
    scaled so one 100%-online run takes a few simulated seconds.

    Every parameter set is [scale]-able: [iters] shrinks with [scale]
    while per-phase behaviour is untouched, so degradation shapes are
    preserved at a fraction of the simulation cost. *)

type bench = BT | CG | EP | FT | MG | SP | LU

val all : bench list
(** In the paper's Figure 9 order. *)

val name : bench -> string
val of_name : string -> bench option

type params = {
  bench_name : string;
  iters : int;  (** outer time steps *)
  phases_per_iter : int;  (** barrier-terminated phases per step *)
  phase_compute : int;  (** cycles of compute per phase per thread *)
  imbalance_cv : float;  (** per-phase compute imbalance *)
  locks_per_phase : int;  (** kernel-lock critical sections per phase *)
  cs_cycles : int;  (** critical-section length *)
  nlocks : int;  (** size of the shared lock set *)
}

val params : bench -> freq:Sim_engine.Units.freq -> scale:float -> params
(** Raises [Invalid_argument] if [scale <= 0]. *)

val workload : ?threads:int -> params -> Workload.t
(** Build the per-VM workload ([threads] defaults to 4, pinned one per
    VCPU as OpenMP does). Barrier ids are [0 .. phases_per_iter - 1];
    parties = [threads]. *)

val ideal_runtime_sec :
  bench -> freq:Sim_engine.Units.freq -> scale:float -> float
(** Per-thread compute demand of one run in seconds: the 100%-online
    lower bound. *)
