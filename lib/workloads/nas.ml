open Sim_engine

type bench = BT | CG | EP | FT | MG | SP | LU

let all = [ BT; CG; EP; FT; MG; SP; LU ]

let name = function
  | BT -> "BT"
  | CG -> "CG"
  | EP -> "EP"
  | FT -> "FT"
  | MG -> "MG"
  | SP -> "SP"
  | LU -> "LU"

let of_name s =
  match String.uppercase_ascii s with
  | "BT" -> Some BT
  | "CG" -> Some CG
  | "EP" -> Some EP
  | "FT" -> Some FT
  | "MG" -> Some MG
  | "SP" -> Some SP
  | "LU" -> Some LU
  | _ -> None

type params = {
  bench_name : string;
  iters : int;
  phases_per_iter : int;
  phase_compute : int;
  imbalance_cv : float;
  locks_per_phase : int;
  cs_cycles : int;
  nlocks : int;
}

(* Raw signatures: (iters at scale 1, phases/iter, phase length in us,
   imbalance cv, locks/phase, critical section in us, lock-set size).
   Phase lengths and counts are chosen so that one full run is a few
   simulated seconds and the sync-op rates reflect each benchmark's
   character. *)
let signature = function
  | BT -> (120, 3, 10_000, 0.002, 6, 2, 4)
  | CG -> (75, 8, 2_000, 0.002, 2, 1, 2)
  | EP -> (10, 1, 150_000, 0.02, 1, 1, 1)
  | FT -> (30, 2, 23_000, 0.005, 4, 2, 2)
  | MG -> (40, 6, 3_750, 0.003, 3, 1, 2)
  | SP -> (160, 3, 6_700, 0.002, 8, 2, 4)
  | LU -> (150, 4, 5_000, 0.002, 10, 2, 4)

let params bench ~freq ~scale =
  if scale <= 0. then invalid_arg "Nas.params: scale must be positive";
  let iters1, phases, phase_us, cv, locks, cs_us, nlocks = signature bench in
  let iters = max 2 (int_of_float (Float.round (float_of_int iters1 *. scale))) in
  {
    bench_name = name bench;
    iters;
    phases_per_iter = phases;
    phase_compute = Units.cycles_of_us freq phase_us;
    imbalance_cv = cv;
    locks_per_phase = locks;
    cs_cycles = Units.cycles_of_us freq cs_us;
    nlocks;
  }

let phase_ops p ~phase =
  let lock_ops =
    List.concat
      (List.init p.locks_per_phase (fun l ->
           let id = ((phase * p.locks_per_phase) + l) mod p.nlocks in
           [
             Sim_guest.Program.Lock id;
             Sim_guest.Program.Compute p.cs_cycles;
             Sim_guest.Program.Unlock id;
           ]))
  in
  Sim_guest.Program.Compute_rand
    { mean = p.phase_compute; cv = p.imbalance_cv }
  :: (lock_ops @ [ Sim_guest.Program.Barrier phase ])

let workload ?(threads = 4) p =
  if threads <= 0 then invalid_arg "Nas.workload: threads must be positive";
  let iteration =
    List.concat (List.init p.phases_per_iter (fun phase -> phase_ops p ~phase))
  in
  let program =
    Sim_guest.Program.make [ Sim_guest.Program.Repeat (p.iters, iteration) ]
  in
  {
    Workload.name = p.bench_name;
    kind = Workload.Concurrent;
    threads =
      List.init threads (fun i ->
          { Workload.affinity = i; program; restart = true });
    barriers = List.init p.phases_per_iter (fun id -> (id, threads));
    semaphores = [];
  }

let ideal_runtime_sec bench ~freq ~scale =
  let p = params bench ~freq ~scale in
  let cycles =
    p.iters * p.phases_per_iter
    * (p.phase_compute + (p.locks_per_phase * p.cs_cycles))
  in
  Units.sec_of_cycles freq cycles
