type kind = Concurrent | Throughput

type thread_spec = {
  affinity : int;
  program : Sim_guest.Program.t;
  restart : bool;
}

type t = {
  name : string;
  kind : kind;
  threads : thread_spec list;
  barriers : (int * int) list;
  semaphores : (int * int) list;
}

let install t kernel =
  List.iter
    (fun (id, parties) -> Sim_guest.Kernel.add_barrier kernel ~id ~parties)
    t.barriers;
  List.iter
    (fun (id, init) -> Sim_guest.Kernel.add_semaphore kernel ~id ~init)
    t.semaphores;
  List.map
    (fun spec ->
      Sim_guest.Kernel.add_thread kernel ~restart:spec.restart
        ~affinity:spec.affinity spec.program)
    t.threads

let thread_count t = List.length t.threads

let critical_path_cycles t =
  List.fold_left
    (fun acc spec ->
      max acc (Sim_guest.Program.total_compute_cycles spec.program))
    0 t.threads

let total_compute_cycles t =
  List.fold_left
    (fun acc spec -> acc + Sim_guest.Program.total_compute_cycles spec.program)
    0 t.threads
