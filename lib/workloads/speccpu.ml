open Sim_engine

type benchmark = Gcc | Bzip2

let name = function Gcc -> "176.gcc" | Bzip2 -> "256.bzip2"

type params = {
  bench_name : string;
  chunks : int;
  chunk_compute : int;
  chunk_cv : float;
}

let params bench ~freq ~scale =
  if scale <= 0. then invalid_arg "Speccpu.params: scale must be positive";
  let base_chunks = match bench with Gcc -> 120 | Bzip2 -> 160 in
  let chunks =
    max 2 (int_of_float (Float.round (float_of_int base_chunks *. scale)))
  in
  {
    bench_name = name bench;
    chunks;
    chunk_compute = Units.cycles_of_ms freq 15;
    chunk_cv = 0.10;
  }

let workload ?(copies = 4) p =
  if copies <= 0 then invalid_arg "Speccpu.workload: copies must be positive";
  let program =
    Sim_guest.Program.make
      [
        Sim_guest.Program.Repeat
          ( p.chunks,
            [
              Sim_guest.Program.Compute_rand
                { mean = p.chunk_compute; cv = p.chunk_cv };
              Sim_guest.Program.Mark;
            ] );
      ]
  in
  {
    Workload.name = p.bench_name;
    kind = Workload.Throughput;
    threads =
      List.init copies (fun i ->
          { Workload.affinity = i; program; restart = true });
    barriers = [];
    semaphores = [];
  }

let ideal_runtime_sec bench ~freq ~scale =
  let p = params bench ~freq ~scale in
  Units.sec_of_cycles freq (p.chunks * p.chunk_compute)
