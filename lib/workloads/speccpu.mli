(** SPEC CPU2000 rate-metric model: N independent copies of a
    compute-bound benchmark per VM, no synchronization.

    The paper uses 176.gcc and 256.bzip2 (4 copies each) as
    high-throughput non-concurrent workloads to measure the collateral
    cost of coscheduling. Run time per round is the time for all
    copies to finish their fixed work. *)

type benchmark = Gcc | Bzip2

val name : benchmark -> string

type params = {
  bench_name : string;
  chunks : int;  (** work chunks per copy *)
  chunk_compute : int;  (** cycles per chunk *)
  chunk_cv : float;
}

val params :
  benchmark -> freq:Sim_engine.Units.freq -> scale:float -> params
(** bzip2 is ~1/3 longer than gcc, as in SPEC. Raises
    [Invalid_argument] if [scale <= 0]. *)

val workload : ?copies:int -> params -> Workload.t
(** [copies] defaults to 4 (the paper's SPEC-rate configuration);
    copy [i] is pinned to VCPU [i]. Threads restart (rate protocol:
    benchmarks repeat in a batch loop). *)

val ideal_runtime_sec :
  benchmark -> freq:Sim_engine.Units.freq -> scale:float -> float
