(** Scheduler-attack guest workloads (Zhou et al.-style tick evasion).

    Under sampled accounting ([Vmm.Sampled], Xen's historical
    discipline) the periodic tick debits a full quantum from whichever
    VCPU occupies the PCPU at the tick instant — so a guest that
    arranges to be asleep at every tick runs for free, keeps maximal
    credit, and starves honest tenants. These workloads model the
    three classic shapes. All are deterministic per scenario seed
    (pure compute/sleep, no random chunks) and run forever.

    Under precise (span-exact) accounting the same guests gain
    nothing: every computed cycle is billed, so their attainment stays
    within their entitlement. That contrast is the theft figure and
    the SimCheck entitlement oracle. *)

val tick_dodge : ?threads:int -> slot_cycles:int -> unit -> Workload.t
(** Burn just under one tick interval (19/20 slot), then block across
    the tick. On a busy host the wake sits queued until the next
    slice-boundary reschedule — which coincides with a credit tick, so
    every burst starts immediately after the previous occupant was
    debited and closes before the next debit. A leading sleep skips
    the one misaligned dispatch at the scenario's t=0 start. *)

val cycle_steal : ?threads:int -> slot_cycles:int -> unit -> Workload.t
(** Sub-tick bursts (~1/2 slot) separated by short sleeps — lower
    duty than the dodger, but each burst is brief enough that the
    guest is rarely the tick occupant. Models an attacker hiding
    inside interactive-looking behaviour. *)

val launder_half :
  ?threads:int -> slot_cycles:int -> phased:bool -> unit -> Workload.t
(** One side of the laundering pair; [phased] shifts the start by half
    a slot. Exposed separately so declarative scenario descriptors can
    place each half in its own VM. *)

val launder_pair :
  ?threads:int -> slot_cycles:int -> unit -> Workload.t * Workload.t
(** Coordinated laundering across two colocated VMs: complementary
    compute/sleep phases (the second workload starts half a slot
    later) so the pair hands the PCPU back and forth around each
    tick. Each VM's own attainment looks modest; the theft only shows
    when the pair is accounted together. Install the two workloads in
    two different VMs on the same host. *)

val is_attack : Workload.t -> bool
(** True for workloads produced by this module (recognised by name). *)
