(** Workload descriptions: everything needed to populate one VM's
    guest kernel with threads and synchronization objects. *)

type kind =
  | Concurrent  (** synchronizing threads (paper: NAS, SPECjbb) *)
  | Throughput  (** independent copies, no synchronization (SPEC rate) *)

type thread_spec = {
  affinity : int;  (** VCPU index (modulo the VM's VCPU count) *)
  program : Sim_guest.Program.t;
  restart : bool;  (** rerun the program when it completes *)
}

type t = {
  name : string;
  kind : kind;
  threads : thread_spec list;
  barriers : (int * int) list;  (** (id, parties) *)
  semaphores : (int * int) list;  (** (id, initial count) *)
}

val install : t -> Sim_guest.Kernel.t -> Sim_guest.Thread.t list
(** Declare objects and create threads (in [threads] order). *)

val thread_count : t -> int

val critical_path_cycles : t -> int
(** Largest per-thread ideal compute demand: a lower bound on the
    workload's 100%-online run time for one round. *)

val total_compute_cycles : t -> int
(** Sum over threads — the CPU demand of one round. *)
