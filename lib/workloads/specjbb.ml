open Sim_engine

type params = {
  warehouses : int;
  txn_compute : int;
  txn_cv : float;
  locks_per_txn : int;
  cs_cycles : int;
  hot_locks : int;
  txns_per_round : int;
}

let default_params ~freq ~warehouses =
  if warehouses <= 0 then
    invalid_arg "Specjbb.default_params: warehouses must be positive";
  {
    warehouses;
    txn_compute = Units.cycles_of_us freq 30;
    txn_cv = 0.2;
    locks_per_txn = 2;
    cs_cycles = Units.cycles_of_us freq 2;
    hot_locks = 4;
    txns_per_round = 200;
  }

let txn_ops p ~thread_index ~txn =
  let lock_ops =
    List.concat
      (List.init p.locks_per_txn (fun l ->
           let id = (thread_index + txn + l) mod p.hot_locks in
           [
             Sim_guest.Program.Lock id;
             Sim_guest.Program.Compute p.cs_cycles;
             Sim_guest.Program.Unlock id;
           ]))
  in
  (Sim_guest.Program.Compute_rand { mean = p.txn_compute; cv = p.txn_cv }
   :: lock_ops)
  @ [ Sim_guest.Program.Mark ]

let workload ?(vcpus = 4) p =
  if vcpus <= 0 then invalid_arg "Specjbb.workload: vcpus must be positive";
  let thread i =
    (* Unroll a few transaction variants so threads rotate over the
       hot-lock set, then repeat the block forever. *)
    let variants = 4 in
    let block =
      List.concat
        (List.init variants (fun txn -> txn_ops p ~thread_index:i ~txn))
    in
    let program =
      Sim_guest.Program.make
        [ Sim_guest.Program.Repeat (max 1 (p.txns_per_round / variants), block) ]
    in
    { Workload.affinity = i mod vcpus; program; restart = true }
  in
  {
    Workload.name = Printf.sprintf "specjbb-w%d" p.warehouses;
    kind = Workload.Concurrent;
    threads = List.init p.warehouses thread;
    barriers = [];
    semaphores = [];
  }

let score entries ~vcpus =
  let qualifying = List.filter (fun (w, _) -> w >= vcpus) entries in
  match qualifying with
  | [] -> invalid_arg "Specjbb.score: no qualifying warehouse counts"
  | _ ->
    List.fold_left (fun acc (_, v) -> acc +. v) 0. qualifying
    /. float_of_int (List.length qualifying)
