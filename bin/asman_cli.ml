(* Command-line driver for the ASMan reproduction.

   Subcommands:
     list                      enumerate the figure experiments
     experiment <id> [...]     regenerate one figure (or all)
     run [...]                 run one ad-hoc scenario and print metrics
     trace [...]               dump a spinlock-wait trace as CSV (Fig 2/8 data)
     lhp [...]                 lock-holder-preemption diagnosis, Credit vs ASMan
     validate-json <file>      check an exported trace/metrics file parses
     learn                     demonstrate the Roth-Erev estimator on a
                               synthetic locality trace
     compare OLD NEW           diff two runs (registry ids, record files
                               or raw BENCH_*.json dumps); exit 1 on
                               regression
     report [--out FILE]       render the registry as a self-contained
                               HTML trend page

   run/experiment accept --trace[=FILE] --trace-cats CATS
   --metrics[=FILE] --profile; all default off, and with them off the
   simulation results are byte-identical to a build without the
   observability layer.

   run/experiment/check additionally drop a metadata-stamped record
   into the run registry (runs/ by default; ASMAN_RUNS= disables, see
   lib/registry). Recording is observation-only: it happens after the
   simulation finished, the note goes to stderr, and stdout is
   byte-identical with recording on or off. *)

open Cmdliner
open Asman

(* Exit codes: 0 success, 1 run failure (exception or invariant
   violations), 2 usage error.  Raised for bad ids/arguments so the
   driver at the bottom can map them uniformly. *)
exception Usage_error of string

let scale_arg =
  let doc = "Workload scale factor (fraction of the full benchmark size)." in
  Arg.(value & opt float Config.default.Config.scale & info [ "scale" ] ~doc)

let seed_arg =
  let doc = "Random seed (simulations are deterministic per seed)." in
  Arg.(value & opt int64 Config.default.Config.seed & info [ "seed" ] ~doc)

let sched_arg =
  let doc = "Scheduler: credit, asman or con (static coscheduling)." in
  let parse s =
    match Config.sched_of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown scheduler %S" s))
  in
  let print fmt k = Format.pp_print_string fmt (Config.sched_name k) in
  Arg.(
    value
    & opt (conv (parse, print)) Config.Asman
    & info [ "sched" ] ~doc ~docv:"SCHED")

let jobs_arg =
  let doc =
    "Worker domains for experiment fan-out (default: $(b,ASMAN_JOBS) or \
     cores - 1; 1 = sequential). Results are identical at any worker count: \
     every data point builds its own engine from a fixed seed."
  in
  Arg.(
    value
    & opt int (Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~doc ~docv:"N")

let queue_arg =
  let doc =
    "Event-queue backend: $(b,wheel) (hierarchical timing wheel, the \
     default) or $(b,heap) (binary-heap oracle kept for differential \
     testing). Both fire events in identical order, so results are \
     byte-identical; only speed differs. Also settable via \
     $(b,ASMAN_ENGINE_QUEUE)."
  in
  let parse s =
    match Sim_engine.Equeue.kind_of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown queue backend %S" s))
  in
  let print fmt k = Format.pp_print_string fmt (Sim_engine.Equeue.kind_name k) in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "engine-queue" ] ~doc ~docv:"BACKEND")

let set_queue = function
  | Some k -> Sim_engine.Engine.set_default_queue k
  | None -> ()

let chaos_arg =
  let doc =
    Printf.sprintf
      "Fault-injection profile: %s, or ipi-loss-<pct>, ipi-delay-<pct>, \
       vcrd-loss-<pct>."
      (String.concat ", " Sim_faults.Fault.known_names)
  in
  let parse s =
    match Sim_faults.Fault.of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown chaos profile %S" s))
  in
  let print fmt p = Format.pp_print_string fmt p.Sim_faults.Fault.pname in
  Arg.(
    value
    & opt (conv (parse, print)) Sim_faults.Fault.none
    & info [ "chaos" ] ~doc ~docv:"PROFILE")

let invariants_arg =
  let doc = "Runtime invariant checking: off, record or raise." in
  let parse s =
    match String.lowercase_ascii s with
    | "off" -> Ok Sim_vmm.Vmm.Off
    | "record" -> Ok Sim_vmm.Vmm.Record
    | "raise" -> Ok Sim_vmm.Vmm.Raise
    | _ -> Error (`Msg (Printf.sprintf "unknown invariant mode %S" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with
      | Sim_vmm.Vmm.Off -> "off"
      | Sim_vmm.Vmm.Record -> "record"
      | Sim_vmm.Vmm.Raise -> "raise")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Config.default.Config.invariants
    & info [ "invariants" ] ~doc ~docv:"MODE")

let config_of ~scale ~seed ~chaos ~invariants =
  let config = Config.with_seed (Config.with_scale Config.default scale) seed in
  { config with Config.faults = chaos; invariants }

(* ----- big-host / parallel-simulation flags (run/experiment) ----- *)

let sim_jobs_arg =
  let doc =
    "Simulation shards. Without $(b,--decouple): arms the engine's \
     conservative-sharding ledger (clamped to the PCPU count); \
     scheduler-visible outcomes stay byte-identical at any value, N > 1 \
     additionally reports windows, cross-shard events and coupling \
     density. With $(b,--decouple): the number of sub-hosts that really \
     run in parallel. 1 (the default) leaves both off."
  in
  Arg.(value & opt int 1 & info [ "sim-jobs" ] ~doc ~docv:"N")

let decouple_arg =
  let doc =
    "Actually decouple the VMM: partition the host socket-aligned into \
     $(b,--sim-jobs) sub-hosts and run them in parallel on the windowed \
     PDES fabric, with work-stealing VM migration between shards. \
     Deterministic and worker-count invariant; requires a clean (no \
     --chaos/--attack) run and a socket count divisible by --sim-jobs."
  in
  Arg.(value & flag & info [ "decouple" ] ~doc)

let workers_arg =
  let doc =
    "Worker domains driving a $(b,--decouple) run (capped at the shard \
     count; default: all available cores). Changes wall-clock speed only, \
     never the simulation outcome."
  in
  Arg.(value & opt (some int) None & info [ "workers" ] ~doc ~docv:"W")

let topology_arg =
  let doc =
    "Host topology as $(b,SOCKETSxCORES) (e.g. 8x16 = 128 PCPUs); default \
     is the paper's 2x4 testbed."
  in
  let parse s =
    match Sim_hw.Topology.of_string s with
    | Some t -> Ok t
    | None -> Error (`Msg (Printf.sprintf "bad topology %S (want SxC)" s))
  in
  let print fmt t = Format.pp_print_string fmt (Sim_hw.Topology.to_string t) in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "topology" ] ~doc ~docv:"SxC")

let numa_arg =
  let doc =
    "Arm the NUMA host model: same-socket work-stealing preference and a \
     cross-socket relocation penalty. Default off (flat host)."
  in
  Arg.(value & flag & info [ "numa" ] ~doc)

let apply_parallel config ~sim_jobs ~topology ~numa =
  let config =
    match topology with
    | None -> config
    | Some topology -> { config with Config.topology }
  in
  { config with Config.sim_jobs = max 1 sim_jobs; numa }

let print_shard_report engine =
  match Sim_engine.Engine.shard_report engine with
  | None -> ()
  | Some r ->
    Printf.printf
      "sim-jobs: %d shards, lookahead %d cycles, %d windows, %d cross-shard \
       events, %d couplings (sub-lookahead)\n"
      r.Sim_engine.Engine.r_shards r.Sim_engine.Engine.r_lookahead
      r.Sim_engine.Engine.r_windows r.Sim_engine.Engine.r_cross
      r.Sim_engine.Engine.r_coupled;
    (match Sim_engine.Engine.shard_fingerprint engine with
    | Some fp -> Printf.printf "sim-jobs fingerprint: %s\n" fp
    | None -> ())

(* ----- observability flags (shared by run/experiment/ablation) ----- *)

let trace_arg =
  let doc =
    "Record a scheduler/guest event trace and write it as Chrome \
     trace_event JSON (open in Perfetto or chrome://tracing). $(docv) \
     defaults to trace.json."
  in
  Arg.(
    value
    & opt ~vopt:(Some "trace.json") (some string) None
    & info [ "trace" ] ~doc ~docv:"FILE")

let trace_cats_arg =
  let doc =
    "Comma-separated trace categories (sched, credit, vcrd, gang, ipi, \
     spin, fault, invariant) or 'all'."
  in
  Arg.(value & opt string "all" & info [ "trace-cats" ] ~doc ~docv:"CATS")

let metrics_arg =
  let doc =
    "Print a metrics-registry snapshot after the run ('-', the default \
     $(docv)) or write it as JSON to a file."
  in
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~doc ~docv:"FILE")

let profile_arg =
  let doc = "Print a wall-clock self-profile of the run's phases." in
  Arg.(value & flag & info [ "profile" ] ~doc)

let write_file file s =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* Resolve the obs flags into a [Config.obs] plus an export hook to
   call once the runs are done (scenarios register themselves in
   [Obs_hub] as they are built, including those constructed deep
   inside experiment jobs). *)
let obs_setup ~trace ~trace_cats ~metrics ~profile =
  let trace_mask =
    match trace with
    | None -> 0
    | Some _ -> (
      match Sim_obs.Trace.mask_of_string trace_cats with
      | Ok m -> m
      | Error e -> raise (Usage_error e))
  in
  let prof =
    if profile then Some (Sim_obs.Prof.create ~clock:Unix.gettimeofday ())
    else None
  in
  let obs =
    {
      Config.trace_mask;
      trace_cap = Sim_obs.Trace.default_cap;
      metrics = metrics <> None;
      profile = prof;
      hub = true;
    }
  in
  let export () =
    let entries = Obs_hub.drain () in
    (match trace with
    | None -> ()
    | Some file ->
      write_file file (Obs_hub.chrome_json entries);
      Obs_hub.note_export file;
      let events =
        List.fold_left
          (fun n (e : Obs_hub.entry) -> n + Sim_obs.Trace.length e.Obs_hub.trace)
          0 entries
      in
      Printf.eprintf "trace: wrote %s (%d scenarios, %d events)\n" file
        (List.length entries) events);
    (match metrics with
    | None -> ()
    | Some "-" -> print_string (Obs_hub.metrics_text entries)
    | Some file ->
      write_file file (Obs_hub.metrics_json entries);
      Obs_hub.note_export file);
    match prof with
    | None -> ()
    | Some p ->
      print_string "self-profile:\n";
      print_string (Sim_obs.Prof.to_text p)
  in
  (obs, export)

(* ----- run-registry recording (lib/registry) ----- *)

module Reg = Sim_registry

(* One record per invocation, stamped with the config axes; exports
   written by obs_setup's hook are picked up as pointers. Failure to
   record never fails the run — the record is an observation. [id]
   lets a caller mint the record id up front (check stamps it into
   repro provenance before recording). *)
let record_invocation ~kind ?id ~config ?workers ~label ~spec ~wall_sec
    ?busy_sec ?sections ?metrics () =
  let r =
    Reg.Record.make
      ~id:
        (match id with
        | Some i -> i
        | None -> Reg.Registry.fresh_id ~kind)
      ~kind ~seed:config.Config.seed ~scale:config.Config.scale
      ~queue:(Sim_engine.Equeue.kind_name (Sim_engine.Engine.default_queue ()))
      ~workers:(Option.value workers ~default:(Pool.jobs ()))
      ~sim_jobs:config.Config.sim_jobs
      ~topology:(Sim_hw.Topology.to_string config.Config.topology)
      ~numa:config.Config.numa
      ~accounting:(Sim_vmm.Vmm.accounting_name config.Config.accounting)
      ~chaos:config.Config.faults.Sim_faults.Fault.pname ~label ~spec ~wall_sec
      ?busy_sec ?sections ?metrics
      ~exports:(Obs_hub.drain_exports ())
      ()
  in
  match
    try Reg.Registry.save_if_enabled r
    with Sys_error msg ->
      Printf.eprintf "registry: %s\n%!" msg;
      None
  with
  | Some path -> Printf.eprintf "run recorded: %s\n%!" path
  | None -> ()

let kv_section entries =
  Reg.Cjson.List
    (List.map
       (fun (id, v) ->
         Reg.Cjson.Obj
           [ ("id", Reg.Cjson.String id); ("value", Reg.Cjson.Float v) ])
       entries)

(* ----- list ----- *)

(* The cluster experiment lives in [Sim_cluster.Figure] (the cluster
   layer depends on the asman library, so Experiments.all cannot list
   it); the CLI is where the two registries meet. [all] keeps its
   paper-figures meaning — the cluster figure runs by explicit id. *)
let all_experiments = Experiments.all @ [ Sim_cluster.Figure.experiment ]

let find_experiment id =
  List.find_opt (fun (e : Experiments.t) -> e.Experiments.id = id)
    all_experiments

let list_cmd =
  let run () =
    List.iter
      (fun (e : Experiments.t) ->
        Printf.printf "%-16s  %s\n" e.Experiments.id e.Experiments.title)
      all_experiments;
    List.iter
      (fun (a : Ablations.t) ->
        Printf.printf "%-16s  %s\n" a.Ablations.id a.Ablations.title)
      Ablations.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the figure experiments")
    Term.(const run $ const ())

(* ----- experiment ----- *)

let experiment_cmd =
  let id_arg =
    let doc = "Figure id (e.g. fig7), or 'all'." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let csv_arg =
    let doc = "Also print the measured series as CSV." in
    Arg.(value & flag & info [ "csv" ] ~doc)
  in
  let cost_cache_arg =
    let doc =
      "Persist per-job wall times to $(docv) and use them to order each \
       figure's jobs longest-first on later runs (LPT; shortens the \
       parallel straggler tail, never changes results)."
    in
    Arg.(
      value & opt (some string) None & info [ "cost-cache" ] ~doc ~docv:"FILE")
  in
  let run id csv scale seed jobs queue cost_cache chaos invariants sim_jobs
      topology numa trace trace_cats metrics profile =
    Pool.set_jobs jobs;
    set_queue queue;
    (match cost_cache with Some f -> Pool.load_cost_cache f | None -> ());
    let obs, export = obs_setup ~trace ~trace_cats ~metrics ~profile in
    let config = { (config_of ~scale ~seed ~chaos ~invariants) with Config.obs } in
    let config = apply_parallel config ~sim_jobs ~topology ~numa in
    let timings = ref [] and fairness = ref [] and cluster = ref [] in
    let run_one (e : Experiments.t) =
      (match cost_cache with
      | Some _ -> Pool.set_job_group (Some e.Experiments.id)
      | None -> ());
      let t0 = Unix.gettimeofday () in
      let outcome = e.Experiments.run config in
      timings := (e.Experiments.id, Unix.gettimeofday () -. t0) :: !timings;
      if e.Experiments.id = "theft" then
        fairness := !fairness @ Experiments.fairness_entries outcome;
      if e.Experiments.id = "cluster" then
        cluster := !cluster @ Sim_cluster.Figure.registry_entries outcome;
      Pool.set_job_group None;
      print_string (Report.outcome e outcome);
      if csv then print_string (Report.series_csv outcome.Experiments.series);
      print_newline ()
    in
    if id = "all" then List.iter run_one Experiments.all
    else begin
      match find_experiment id with
      | Some e -> run_one e
      | None ->
        raise
          (Usage_error (Printf.sprintf "unknown experiment %S; try 'list'" id))
    end;
    (match cost_cache with Some f -> Pool.save_cost_cache f | None -> ());
    export ();
    let timings = List.rev !timings in
    let runs_section =
      Reg.Cjson.List
        (List.map
           (fun (fid, wall) ->
             Reg.Cjson.Obj
               [
                 ("id", Reg.Cjson.String fid); ("wall_sec", Reg.Cjson.Float wall);
               ])
           timings)
    in
    record_invocation
      ~kind:(if id = "theft" then "theft" else "experiment")
      ~config
      ~label:("experiment " ^ id)
      ~spec:
        (Reg.Cjson.Obj
           [
             ("subcommand", Reg.Cjson.String "experiment");
             ("id", Reg.Cjson.String id);
           ])
      ~wall_sec:(List.fold_left (fun s (_, w) -> s +. w) 0. timings)
      ~sections:
        (Reg.Cjson.Obj
           (("runs", runs_section)
           ::
           ((match !fairness with
            | [] -> []
            | f ->
              [
                ( "fairness",
                  Reg.Cjson.List
                    (List.map
                       (fun (fid, ratio) ->
                         Reg.Cjson.Obj
                           [
                             ("id", Reg.Cjson.String fid);
                             ("ratio", Reg.Cjson.Float ratio);
                           ])
                       f) );
              ])
           @
           match !cluster with
           | [] -> []
           | c -> [ ("cluster", kv_section c) ])))
      ();
    0
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a figure of the paper")
    Term.(
      const run $ id_arg $ csv_arg $ scale_arg $ seed_arg $ jobs_arg
      $ queue_arg $ cost_cache_arg $ chaos_arg $ invariants_arg
      $ sim_jobs_arg $ topology_arg $ numa_arg $ trace_arg
      $ trace_cats_arg $ metrics_arg $ profile_arg)

(* ----- ablation ----- *)

let ablation_cmd =
  let id_arg =
    let doc = "Ablation id (see 'asman_cli ablations'), or 'all'." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run id scale seed jobs queue =
    Pool.set_jobs jobs;
    set_queue queue;
    let config =
      config_of ~scale ~seed ~chaos:Sim_faults.Fault.none
        ~invariants:Config.default.Config.invariants
    in
    let run_one (a : Ablations.t) =
      let outcome = a.Ablations.run config in
      let as_experiment =
        {
          Experiments.id = a.Ablations.id;
          title = a.Ablations.title;
          description = a.Ablations.description;
          run = a.Ablations.run;
        }
      in
      print_string (Report.outcome as_experiment outcome);
      print_newline ()
    in
    if id = "all" then List.iter run_one Ablations.all
    else begin
      match Ablations.find id with
      | Some a -> run_one a
      | None ->
        raise
          (Usage_error
             (Printf.sprintf "unknown ablation %S; known: %s" id
                (String.concat ", " (Ablations.ids ()))))
    end;
    0
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run an ablation study of a design choice")
    Term.(const run $ id_arg $ scale_arg $ seed_arg $ jobs_arg $ queue_arg)

(* ----- cluster ----- *)

let cluster_cmd =
  let hosts_arg =
    let doc = "Number of simulated hosts (each a full VMM stack)." in
    Arg.(value & opt int 8 & info [ "hosts" ] ~doc ~docv:"N")
  in
  let vms_arg =
    let doc = "Trace length: VMs arriving over the run." in
    Arg.(value & opt int 24 & info [ "vms" ] ~doc ~docv:"N")
  in
  let policy_arg =
    let doc = "Placement policy: first-fit, best-fit or lifetime." in
    let parse s =
      match Sim_cluster.Placement.policy_of_name s with
      | Some p -> Ok p
      | None -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
    in
    let print fmt p =
      Format.pp_print_string fmt (Sim_cluster.Placement.policy_name p)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Sim_cluster.Placement.Lifetime_aware
      & info [ "policy" ] ~doc ~docv:"POLICY")
  in
  let dist_arg =
    let doc = "Lifetime distribution: uniform, bimodal or heavy." in
    let parse s =
      match Sim_cluster.Vtrace.dist_of_name s with
      | Some d -> Ok d
      | None -> Error (`Msg (Printf.sprintf "unknown distribution %S" s))
    in
    let print fmt d =
      Format.pp_print_string fmt (Sim_cluster.Vtrace.dist_name d)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Sim_cluster.Vtrace.Bimodal
      & info [ "dist" ] ~doc ~docv:"DIST")
  in
  let horizon_arg =
    let doc = "Simulated horizon in seconds." in
    Arg.(value & opt float 2.0 & info [ "horizon" ] ~doc ~docv:"SEC")
  in
  let overcommit_arg =
    let doc = "VCPU-slot capacity per host as a multiple of its PCPUs." in
    Arg.(value & opt float 2.0 & info [ "overcommit" ] ~doc ~docv:"X")
  in
  let no_rebalance_arg =
    let doc = "Disable pressure migrations (placement only)." in
    Arg.(value & flag & info [ "no-rebalance" ] ~doc)
  in
  let penalty_arg =
    let doc = "Lifetime-aware scorer's load-spreading penalty (seconds of \
               drain extension per unit utilization)." in
    Arg.(value & opt float 0.75 & info [ "penalty" ] ~doc ~docv:"SEC")
  in
  let log_arg =
    let doc = "Print the controller's placement log." in
    Arg.(value & flag & info [ "log" ] ~doc)
  in
  let run hosts vms policy dist horizon overcommit no_rebalance penalty log
      scale seed sched queue invariants sim_jobs workers topology numa =
    set_queue queue;
    if hosts < 1 then raise (Usage_error "--hosts must be >= 1");
    if vms < 1 then raise (Usage_error "--vms must be >= 1");
    let config =
      config_of ~scale ~seed ~chaos:Sim_faults.Fault.none ~invariants
    in
    let config = apply_parallel config ~sim_jobs ~topology ~numa in
    let trace =
      Sim_cluster.Vtrace.generate ~max_vcpus:(Config.pcpus config) ~seed ~vms
        ~dist ~horizon_sec:horizon ()
    in
    let t =
      Sim_cluster.Cluster.build ~overcommit ~penalty_sec:penalty
        ~rebalance:(not no_rebalance) config ~sched ~policy ~hosts ~trace
    in
    (* --sim-jobs N drives the fabric with N workers (members are
       always hosts+1); --workers overrides it. Outcomes are
       worker-count invariant either way. *)
    let workers =
      match workers with Some w -> w | None -> max 1 sim_jobs
    in
    let wall0 = Unix.gettimeofday () in
    let r = Sim_cluster.Cluster.run ~workers t ~horizon_sec:horizon in
    let wall = Unix.gettimeofday () -. wall0 in
    let errors = Sim_cluster.Cluster.conservation_errors t in
    Printf.printf
      "cluster: %d hosts (%s each), %d VMs (%s lifetimes), policy %s, sched \
       %s, %d workers\n"
      r.Sim_cluster.Cluster.cr_hosts
      (Sim_hw.Topology.to_string config.Config.topology)
      vms
      (Sim_cluster.Vtrace.dist_name dist)
      r.Sim_cluster.Cluster.cr_policy
      (Config.sched_name sched) r.Sim_cluster.Cluster.cr_workers;
    List.iter
      (fun (k, v) -> Printf.printf "  %-24s %s\n" k v)
      [
        ("density (VMs/host)",
         Printf.sprintf "%.3f" r.Sim_cluster.Cluster.cr_density);
        ("p99 stall (ms)",
         Printf.sprintf "%.3f" r.Sim_cluster.Cluster.cr_p99_stall_ms);
        ("mean stall (ms)",
         Printf.sprintf "%.4f" r.Sim_cluster.Cluster.cr_mean_stall_ms);
        ("stall samples",
         string_of_int r.Sim_cluster.Cluster.cr_stall_samples);
        ("stall tail",
         String.concat " "
           (List.map
              (fun (k, c) -> Printf.sprintf ">=2^%d:%d" k c)
              r.Sim_cluster.Cluster.cr_stall_tail));
        ("placements", string_of_int r.Sim_cluster.Cluster.cr_placements);
        ("deferrals", string_of_int r.Sim_cluster.Cluster.cr_deferrals);
        ("evictions", string_of_int r.Sim_cluster.Cluster.cr_evictions);
        ("migrations", string_of_int r.Sim_cluster.Cluster.cr_migrations);
        ("nacks", string_of_int r.Sim_cluster.Cluster.cr_nacks);
        ("departures", string_of_int r.Sim_cluster.Cluster.cr_departures);
        ("repredictions",
         string_of_int r.Sim_cluster.Cluster.cr_repredictions);
        ("sim sec", Printf.sprintf "%.3f" r.Sim_cluster.Cluster.cr_sim_sec);
        ("events", string_of_int r.Sim_cluster.Cluster.cr_events);
        ("windows", string_of_int r.Sim_cluster.Cluster.cr_windows);
        ("cross posts", string_of_int r.Sim_cluster.Cluster.cr_cross_posts);
        ("wall sec", Printf.sprintf "%.2f" wall);
        ("digest",
         Printf.sprintf "%08x" (r.Sim_cluster.Cluster.cr_digest land 0xffffffff));
      ];
    List.iter
      (fun (h : Sim_cluster.Cluster.host_report) ->
        Printf.printf "  host %d: peak %d slots, final [%s]\n"
          h.Sim_cluster.Cluster.h_host h.Sim_cluster.Cluster.h_peak_used
          (String.concat " " h.Sim_cluster.Cluster.h_physical))
      r.Sim_cluster.Cluster.cr_host_reports;
    if log then
      List.iter
        (fun (time, s) -> Printf.printf "  @%-12d %s\n" time s)
        r.Sim_cluster.Cluster.cr_log;
    List.iter (fun e -> Printf.printf "CONSERVATION: %s\n" e) errors;
    record_invocation ~kind:"cluster" ~config ~workers
      ~label:
        (Printf.sprintf "cluster %dh %dvm %s %s" hosts vms
           r.Sim_cluster.Cluster.cr_policy (Config.sched_name sched))
      ~spec:
        (Reg.Cjson.Obj
           [
             ("subcommand", Reg.Cjson.String "cluster");
             ("hosts", Reg.Cjson.Int hosts);
             ("vms", Reg.Cjson.Int vms);
             ("policy", Reg.Cjson.String r.Sim_cluster.Cluster.cr_policy);
             ("dist", Reg.Cjson.String (Sim_cluster.Vtrace.dist_name dist));
             ("horizon_sec", Reg.Cjson.Float horizon);
             ("sched", Reg.Cjson.String (Config.sched_name sched));
           ])
      ~wall_sec:wall
      ~sections:
        (Reg.Cjson.Obj
           [
             ( "cluster",
               kv_section
                 [
                   ("density", r.Sim_cluster.Cluster.cr_density);
                   ("p99_stall_ms", r.Sim_cluster.Cluster.cr_p99_stall_ms);
                   ("mean_stall_ms", r.Sim_cluster.Cluster.cr_mean_stall_ms);
                   ("migrations",
                    float_of_int r.Sim_cluster.Cluster.cr_migrations);
                   ("evictions",
                    float_of_int r.Sim_cluster.Cluster.cr_evictions);
                   ("deferrals",
                    float_of_int r.Sim_cluster.Cluster.cr_deferrals);
                   ("departures",
                    float_of_int r.Sim_cluster.Cluster.cr_departures);
                   ("placements",
                    float_of_int r.Sim_cluster.Cluster.cr_placements);
                   ("repredictions",
                    float_of_int r.Sim_cluster.Cluster.cr_repredictions);
                 ] );
           ])
      ();
    if errors = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Simulate a datacenter: N hosts on the PDES fabric, a seeded VM \
          arrival/departure trace, pluggable placement (first-fit / \
          best-fit / LAVA-style lifetime-aware) and live migration; \
          self-checks the cluster-conservation oracle")
    Term.(
      const run $ hosts_arg $ vms_arg $ policy_arg $ dist_arg $ horizon_arg
      $ overcommit_arg $ no_rebalance_arg $ penalty_arg $ log_arg $ scale_arg
      $ seed_arg
      $ sched_arg $ queue_arg $ invariants_arg $ sim_jobs_arg $ workers_arg
      $ topology_arg $ numa_arg)

(* ----- run ----- *)

let workload_conv =
  let doc =
    "bt|cg|ep|ft|mg|sp|lu (NAS), gcc|bzip2 (SPEC rate), jbb<N> (SPECjbb, N \
     warehouses)"
  in
  let parse s =
    let s = String.lowercase_ascii s in
    match Sim_workloads.Nas.of_name s with
    | Some b -> Ok (Scenario.W_nas (Sim_workloads.Nas.name b))
    | None ->
      if s = "gcc" || s = "bzip2" then Ok (Scenario.W_speccpu s)
      else if String.length s > 3 && String.sub s 0 3 = "jbb" then begin
        match int_of_string_opt (String.sub s 3 (String.length s - 3)) with
        | Some n when n > 0 -> Ok (Scenario.W_jbb { warehouses = n })
        | Some _ | None -> Error (`Msg "jbb<N> needs a positive N")
      end
      else Error (`Msg (Printf.sprintf "unknown workload %S (%s)" s doc))
  in
  let print fmt (w : Scenario.workload_desc) =
    Format.pp_print_string fmt
      (match w with
      | Scenario.W_nas n -> String.lowercase_ascii n
      | Scenario.W_speccpu n -> n
      | Scenario.W_jbb { warehouses } -> Printf.sprintf "jbb%d" warehouses
      | _ -> "?")
  in
  Arg.conv (parse, print)

let build_workload config w = Scenario.workload_of_desc config w

let run_cmd =
  let vms_arg =
    let doc = "Workload per VM (repeatable): each VM gets 4 VCPUs." in
    Arg.(
      value
      & opt_all workload_conv [ Scenario.W_nas "LU" ]
      & info [ "vm" ] ~doc ~docv:"WORKLOAD")
  in
  let weight_arg =
    let doc = "Weight of every guest VM (Dom0 is fixed at 256)." in
    Arg.(value & opt int 256 & info [ "weight" ] ~doc)
  in
  let capped_arg =
    let doc = "Non-work-conserving mode (strict proportional cap)." in
    Arg.(value & flag & info [ "capped" ] ~doc)
  in
  let rounds_arg =
    let doc = "Rounds of each VM's workload to wait for." in
    Arg.(value & opt int 1 & info [ "rounds" ] ~doc)
  in
  let max_sec_arg =
    let doc = "Simulated-time budget in seconds." in
    Arg.(value & opt float 120. & info [ "max-sec" ] ~doc)
  in
  let accounting_arg =
    let doc =
      "Credit accounting: $(b,precise) (span-exact billing, the default) or \
       $(b,sampled) (Xen-style periodic-tick sampling — the occupant at each \
       tick pays a full quantum, which scheduler attacks exploit)."
    in
    Arg.(
      value
      & opt (enum [ ("precise", "precise"); ("sampled", "sampled") ]) "precise"
      & info [ "accounting" ] ~doc ~docv:"MODE")
  in
  let attack_arg =
    let doc =
      "Add an adversarial guest VM (weight 128): $(b,dodge) (tick-dodging), \
       $(b,steal) (low-rate cycle stealing) or $(b,launder) (a coordinated \
       phase-offset pair). Attack programs never finish a round, so the run \
       measures a fixed window of $(b,--max-sec) simulated seconds and \
       reports attained vs entitled cycles per VM. Try with \
       $(b,--accounting sampled) vs the precise default."
    in
    Arg.(
      value
      & opt
          (some (enum [ ("dodge", "dodge"); ("steal", "steal"); ("launder", "launder") ]))
          None
      & info [ "attack" ] ~doc ~docv:"ATTACK")
  in
  let run vms weight capped rounds max_sec sched scale seed queue chaos
      invariants sim_jobs decouple workers topology numa accounting attack
      trace trace_cats metrics profile =
    set_queue queue;
    let obs, export = obs_setup ~trace ~trace_cats ~metrics ~profile in
    let config = { (config_of ~scale ~seed ~chaos ~invariants) with Config.obs } in
    let config = apply_parallel config ~sim_jobs ~topology ~numa in
    let config = Config.with_work_conserving config (not capped) in
    let config =
      match Sim_vmm.Vmm.accounting_of_name accounting with
      | Some a -> { config with Config.accounting = a }
      | None -> assert false (* Arg.enum already validated *)
    in
    let attackers =
      match attack with
      | None -> []
      | Some "dodge" -> [ ("A1:attack-dodge", Scenario.W_attack_dodge { threads = 1 }) ]
      | Some "steal" -> [ ("A1:attack-steal", Scenario.W_attack_steal { threads = 1 }) ]
      | Some "launder" ->
        [
          ("A1:attack-launder", Scenario.W_attack_launder { threads = 1; phased = false });
          ("A2:attack-launder", Scenario.W_attack_launder { threads = 1; phased = true });
        ]
      | Some _ -> assert false (* Arg.enum already validated *)
    in
    let attack_specs =
      List.map
        (fun (name, desc) ->
          {
            Scenario.vm_name = name;
            weight = 128;
            vcpus = 1;
            workload = Some (Scenario.workload_of_desc config desc);
          })
        attackers
    in
    let specs =
      attack_specs
      @ List.mapi
          (fun i w ->
            let workload = build_workload config w in
            {
              Scenario.vm_name =
                Printf.sprintf "V%d:%s" (i + 1)
                  workload.Sim_workloads.Workload.name;
              weight;
              vcpus = 4;
              workload = Some workload;
            })
          vms
    in
    let vm_names =
      List.map (fun (s : Scenario.vm_spec) -> s.Scenario.vm_name) specs
    in
    if decouple then begin
      if attack <> None then
        raise
          (Usage_error
             "--decouple does not support --attack (fixed-window attack runs \
              need the coupled engine)");
      let config = { config with Config.decouple = true } in
      let d =
        try Decouple.build config ~sched ~vms:specs
        with Invalid_argument msg -> raise (Usage_error msg)
      in
      let host_t0 = Unix.gettimeofday () in
      let r = Decouple.run ?workers d ~rounds ~max_sec in
      let host_wall = Unix.gettimeofday () -. host_t0 in
      Printf.printf
        "scheduler: %s   decoupled: %d shards x %d workers   simulated: %.3f \
         s   events: %d\n\n"
        (Config.sched_name sched) r.Decouple.rp_shards r.Decouple.rp_workers
        r.Decouple.rp_sim_sec r.Decouple.rp_events;
      let headers = [ "VM"; "rounds"; "migrations"; "final shard" ] in
      let rows =
        List.map
          (fun (v : Decouple.vm_report) ->
            [
              v.Decouple.r_vm;
              string_of_int v.Decouple.r_rounds;
              string_of_int v.Decouple.r_migrations;
              string_of_int v.Decouple.r_final_shard;
            ])
          r.Decouple.rp_vms
      in
      print_string (Sim_stats.Table.render ~headers rows);
      print_newline ();
      Printf.printf
        "fabric: %d windows, %d cross-shard posts (max %d per window), \
         lookahead %d cycles\n"
        r.Decouple.rp_windows r.Decouple.rp_cross_posts
        r.Decouple.rp_max_window_mail (Decouple.lookahead d);
      Printf.printf
        "steals: %d requests, %d grants, %d nacks, mean latency %.0f cycles\n"
        r.Decouple.rp_steal_reqs r.Decouple.rp_grants r.Decouple.rp_nacks
        r.Decouple.rp_mean_steal_latency_cycles;
      Printf.printf "decoupled digest: %08x\n"
        (r.Decouple.rp_digest land 0xffffffff);
      export ();
      record_invocation ~kind:"run" ~config ~workers:r.Decouple.rp_workers
        ~label:
          (Printf.sprintf "run-decoupled %s %s" (Config.sched_name sched)
             (String.concat "," vm_names))
        ~spec:
          (Reg.Cjson.Obj
             [
               ("subcommand", Reg.Cjson.String "run");
               ("decouple", Reg.Cjson.Bool true);
               ("sched", Reg.Cjson.String (Config.sched_name sched));
               ( "vms",
                 Reg.Cjson.List
                   (List.map (fun n -> Reg.Cjson.String n) vm_names) );
               ("weight", Reg.Cjson.Int weight);
               ("rounds", Reg.Cjson.Int rounds);
               ("max_sec", Reg.Cjson.Float max_sec);
             ])
        ~wall_sec:host_wall
        ~metrics:(Decouple.report_metrics r) ();
      0
    end
    else begin
    let scenario = Scenario.build config ~sched ~vms:specs in
    let host_t0 = Unix.gettimeofday () in
    let metrics =
      (* Attack programs never finish a round by design, so attack runs
         measure a fixed window of [--max-sec] simulated seconds. *)
      if attack <> None then Runner.run_window scenario ~sec:max_sec
      else Runner.run_rounds scenario ~rounds ~max_sec
    in
    let host_wall = Unix.gettimeofday () -. host_t0 in
    Printf.printf "scheduler: %s   simulated: %.3f s   events: %d   ipis: %d\n\n"
      (Config.sched_name sched) metrics.Runner.wall_sec
      metrics.Runner.events_fired metrics.Runner.ipis;
    let headers =
      [
        "VM"; "rounds"; "mean round (s)"; "online"; "expected"; "over-thr";
        "vcrd flips";
      ]
    in
    let rows =
      List.map
        (fun (vm : Runner.vm_metrics) ->
          let mean =
            match vm.Runner.round_sec with
            | [] -> nan
            | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
          in
          [
            vm.Runner.vm_name;
            string_of_int vm.Runner.rounds;
            Sim_stats.Table.fixed ~decimals:3 mean;
            Sim_stats.Table.fixed ~decimals:3 vm.Runner.online_rate;
            Sim_stats.Table.fixed ~decimals:3 vm.Runner.expected_online;
            string_of_int vm.Runner.spin_over_threshold;
            string_of_int vm.Runner.vcrd_transitions;
          ])
        metrics.Runner.vms
    in
    print_string (Sim_stats.Table.render ~headers rows);
    print_newline ();
    print_string (Report.health_summary metrics);
    print_shard_report scenario.Scenario.engine;
    let violations = Sim_vmm.Vmm.invariant_violations scenario.Scenario.vmm in
    List.iteri
      (fun i msg -> if i < 5 then Printf.printf "  violation: %s\n" msg)
      violations;
    (match violations with
    | _ :: _ :: _ :: _ :: _ :: _ :: _ ->
      Printf.printf "  ... and %d more\n" (List.length violations - 5)
    | _ -> ());
    export ();
    record_invocation ~kind:"run" ~config
      ~label:
        (Printf.sprintf "run %s %s" (Config.sched_name sched)
           (String.concat "," vm_names))
      ~spec:
        (Reg.Cjson.Obj
           [
             ("subcommand", Reg.Cjson.String "run");
             ("sched", Reg.Cjson.String (Config.sched_name sched));
             ( "vms",
               Reg.Cjson.List
                 (List.map (fun n -> Reg.Cjson.String n) vm_names) );
             ("weight", Reg.Cjson.Int weight);
             ("capped", Reg.Cjson.Bool capped);
             ("rounds", Reg.Cjson.Int rounds);
             ("max_sec", Reg.Cjson.Float max_sec);
             ( "attack",
               match attack with
               | None -> Reg.Cjson.Null
               | Some a -> Reg.Cjson.String a );
           ])
      ~wall_sec:host_wall
      ~metrics:(Runner.metrics_kv metrics) ();
    if metrics.Runner.invariant_violations > 0 then 1 else 0
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run an ad-hoc scenario")
    Term.(
      const run $ vms_arg $ weight_arg $ capped_arg $ rounds_arg $ max_sec_arg
      $ sched_arg $ scale_arg $ seed_arg $ queue_arg $ chaos_arg
      $ invariants_arg $ sim_jobs_arg $ decouple_arg $ workers_arg
      $ topology_arg $ numa_arg
      $ accounting_arg $ attack_arg $ trace_arg $ trace_cats_arg $ metrics_arg
      $ profile_arg)

(* ----- trace ----- *)

let trace_cmd =
  let weight_arg =
    let doc = "VM weight: 256/128/64/32 give 100/66.7/40/22.2% online." in
    Arg.(value & opt int 32 & info [ "weight" ] ~doc)
  in
  let bench_arg =
    let doc = "NAS benchmark to trace." in
    Arg.(value & opt string "lu" & info [ "bench" ] ~doc)
  in
  let run weight bench sched scale seed chaos invariants =
    match Sim_workloads.Nas.of_name bench with
    | None ->
      raise (Usage_error (Printf.sprintf "unknown NAS benchmark %S" bench))
    | Some b ->
      let config = config_of ~scale ~seed ~chaos ~invariants in
      let config = Config.with_work_conserving config false in
      let workload =
        Sim_workloads.Nas.workload
          (Sim_workloads.Nas.params b ~freq:(Config.freq config) ~scale)
      in
      let scenario =
        Scenario.build config ~sched
          ~vms:
            [ { Scenario.vm_name = "V1"; weight; vcpus = 4; workload = Some workload } ]
      in
      let _ = Runner.run_rounds scenario ~rounds:1 ~max_sec:600. in
      let monitor = Runner.monitor_of scenario ~vm:"V1" in
      print_string (Report.trace_csv (Sim_guest.Monitor.trace monitor));
      0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Dump the spinlock waiting-time trace (Fig 2/8 raw data) as CSV")
    Term.(
      const run $ weight_arg $ bench_arg $ sched_arg $ scale_arg $ seed_arg
      $ chaos_arg $ invariants_arg)

(* ----- lhp ----- *)

let lhp_cmd =
  let sec_arg =
    let doc = "Simulated observation window in seconds." in
    Arg.(value & opt float 5. & info [ "sec" ] ~doc)
  in
  let vms_count_arg =
    let doc = "Number of identical concurrent (LU) VMs." in
    Arg.(value & opt int 3 & info [ "vms" ] ~doc)
  in
  (* One diagnosis: run the same overcommitted concurrent workload
     under a scheduler with Sched+Spin tracing on, then join the
     spinlock waits against the scheduling timeline. *)
  let diagnose ~base ~sec ~nvms sched =
    let mask =
      Sim_obs.Trace.(cat_bit Sched lor cat_bit Spin lor cat_bit Gang)
    in
    let config =
      {
        base with
        Config.obs = { Config.obs_off with Config.trace_mask = mask };
      }
    in
    let specs =
      List.init nvms (fun i ->
          let workload =
            Sim_workloads.Nas.workload
              (Sim_workloads.Nas.params Sim_workloads.Nas.LU
                 ~freq:(Config.freq config) ~scale:config.Config.scale)
          in
          {
            Scenario.vm_name = Printf.sprintf "V%d:lu" (i + 1);
            weight = 256;
            vcpus = 4;
            workload = Some workload;
          })
    in
    let scenario = Scenario.build config ~sched ~vms:specs in
    let (_ : Runner.metrics) = Runner.run_window scenario ~sec in
    let entries =
      Sim_obs.Trace.entries (Sim_engine.Engine.trace scenario.Scenario.engine)
    in
    let timeline =
      Sim_obs.Timeline.of_entries ~pcpus:(Config.pcpus config) entries
    in
    let vm_names =
      (scenario.Scenario.dom0.Sim_vmm.Domain.id, "Domain-0")
      :: List.map
           (fun (i : Scenario.vm_instance) ->
             (i.Scenario.domain.Sim_vmm.Domain.id, i.Scenario.spec.Scenario.vm_name))
           scenario.Scenario.vms
    in
    (Sim_obs.Lhp.classify ~timeline entries, vm_names)
  in
  let run sec nvms scale seed =
    if nvms <= 0 then raise (Usage_error "lhp: --vms must be positive");
    let base = Config.with_seed (Config.with_scale Config.default scale) seed in
    let schedulers = [ Config.Credit; Config.Asman ] in
    let reports =
      List.map
        (fun sched ->
          let report, vm_names = diagnose ~base ~sec ~nvms sched in
          (sched, report, vm_names))
        schedulers
    in
    Obs_hub.clear ();
    List.iter
      (fun (sched, report, vm_names) ->
        Printf.printf "== %s ==\n%s\n" (Config.sched_name sched)
          (Sim_obs.Lhp.to_text ~vm_names report))
      reports;
    (match reports with
    | [ (_, credit, _); (_, asman, _) ] ->
      Printf.printf
        "preempted-holder share: credit %.3f -> asman %.3f (%s)\n"
        credit.Sim_obs.Lhp.preempted_share asman.Sim_obs.Lhp.preempted_share
        (if asman.Sim_obs.Lhp.preempted_share
            <= credit.Sim_obs.Lhp.preempted_share
         then "coscheduling removes lock-holder preemption"
         else "unexpected: share grew under coscheduling")
    | _ -> ());
    0
  in
  Cmd.v
    (Cmd.info "lhp"
       ~doc:
         "Diagnose lock-holder preemption: classify over-threshold spinlock \
          waits against the scheduling timeline, Credit vs ASMan")
    Term.(const run $ sec_arg $ vms_count_arg $ scale_arg $ seed_arg)

(* ----- validate-json ----- *)

let validate_json_cmd =
  let file_arg =
    let doc = "JSON file to validate ('-' = stdin)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let contents =
      if file = "-" then In_channel.input_all stdin
      else In_channel.with_open_bin file In_channel.input_all
    in
    match Sim_obs.Json.validate contents with
    | Ok () ->
      Printf.printf "%s: valid JSON\n" file;
      0
    | Error msg ->
      Printf.eprintf "%s: invalid JSON: %s\n" file msg;
      1
  in
  Cmd.v
    (Cmd.info "validate-json"
       ~doc:"Check that a file (e.g. an exported trace) is well-formed JSON")
    Term.(const run $ file_arg)

(* ----- check / repro (SimCheck) ----- *)

let mutate_arg =
  let doc =
    Printf.sprintf
      "Arm a seeded scheduler mutation before running (oracle validation): \
       %s. A correct oracle set must fail under each of these."
      (String.concat ", " (List.map Sim_vmm.Mutation.to_name Sim_vmm.Mutation.all))
  in
  let parse s =
    match Sim_vmm.Mutation.of_name s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown mutation %S" s))
  in
  let print fmt m = Format.pp_print_string fmt (Sim_vmm.Mutation.to_name m) in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "mutate" ] ~doc ~docv:"MUTATION")

let check_cmd =
  let cases_arg =
    let doc = "Number of random cases to generate and run." in
    Arg.(value & opt int 100 & info [ "cases" ] ~doc ~docv:"N")
  in
  let timeout_arg =
    let doc =
      "Per-case wall-clock limit in seconds; a case over the limit is \
       reported as a failure with its seed."
    in
    Arg.(value & opt float 120. & info [ "timeout" ] ~doc ~docv:"SEC")
  in
  let shrink_budget_arg =
    let doc = "Maximum simulations the shrinker may spend per failure." in
    Arg.(value & opt int 200 & info [ "shrink-budget" ] ~doc ~docv:"N")
  in
  let repro_dir_arg =
    let doc = "Directory for shrunk repro case files." in
    Arg.(value & opt string "." & info [ "repro-dir" ] ~doc ~docv:"DIR")
  in
  let run cases seed jobs timeout shrink_budget repro_dir mutate =
    Sim_vmm.Mutation.set mutate;
    (* Mint the record id before the run so repro provenance can name
       the record that will describe it; no id when recording is off
       (a stamp pointing at a record that won't exist would lie). *)
    let record_id =
      match Reg.Registry.dir () with
      | None -> None
      | Some _ -> Some (Reg.Registry.fresh_id ~kind:"check")
    in
    let host_t0 = Unix.gettimeofday () in
    let report =
      Sim_check.Check.run ~jobs ~timeout_sec:timeout ~shrink_budget ~cases
        ~seed ()
    in
    let host_wall = Unix.gettimeofday () -. host_t0 in
    List.iter
      (fun (t : Sim_check.Check.timeout_report) ->
        Printf.printf
          "TIMEOUT: case %d (case seed %Ld) exceeded %.0f s\n"
          t.Sim_check.Check.tr_index t.Sim_check.Check.tr_seed
          t.Sim_check.Check.tr_limit_sec)
      report.Sim_check.Check.timeouts;
    List.iter
      (fun fr -> print_endline (Sim_check.Check.failure_summary fr))
      report.Sim_check.Check.failures;
    let repros =
      Sim_check.Check.write_repros ~dir:repro_dir ?record_id report
    in
    List.iter (Printf.printf "repro written: %s\n") repros;
    List.iter Obs_hub.note_export repros;
    record_invocation ~kind:"check" ?id:record_id
      ~config:(Config.with_seed Config.default seed)
      ~workers:jobs ~label:(Printf.sprintf "check %d cases" cases)
      ~spec:
        (Reg.Cjson.Obj
           [
             ("subcommand", Reg.Cjson.String "check");
             ("cases", Reg.Cjson.Int cases);
             ("timeout_sec", Reg.Cjson.Float timeout);
             ("shrink_budget", Reg.Cjson.Int shrink_budget);
             ( "mutate",
               match mutate with
               | None -> Reg.Cjson.Null
               | Some m -> Reg.Cjson.String (Sim_vmm.Mutation.to_name m) );
           ])
      ~wall_sec:host_wall
      ~sections:
        (Reg.Cjson.Obj
           [ ("check", kv_section (Sim_check.Check.summary_kv report)) ])
      ();
    if Sim_check.Check.passed report then begin
      Printf.printf "check: %d cases, seed %Ld: all oracles passed\n"
        report.Sim_check.Check.cases seed;
      0
    end
    else 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Fuzz the scheduler: run N random full-stack scenarios against the \
          SimCheck oracle catalogue, shrinking any failure to a minimal \
          JSON repro")
    Term.(
      const run $ cases_arg $ seed_arg $ jobs_arg $ timeout_arg
      $ shrink_budget_arg $ repro_dir_arg $ mutate_arg)

let repro_cmd =
  let file_arg =
    let doc = "SimCheck case file (JSON) to replay." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file mutate =
    Sim_vmm.Mutation.set mutate;
    let spec =
      try Sim_check.Spec.load file with
      | Sys_error e -> raise (Usage_error e)
      | Sim_check.Cjson.Parse_error e ->
        raise (Usage_error (Printf.sprintf "%s: %s" file e))
    in
    (match spec.Sim_check.Spec.provenance with
    | None -> ()
    | Some p ->
      Printf.printf "found by: %s (case seed %Ld)\n"
        (Option.value p.Sim_check.Spec.pv_record ~default:"unrecorded run")
        p.Sim_check.Spec.pv_seed);
    match Sim_check.Case.run spec with
    | [] ->
      Printf.printf "%s: all oracles passed\n" file;
      0
    | failures ->
      List.iter
        (fun (f : Sim_check.Oracle.failure) ->
          Printf.printf "FAIL %s: %s\n" f.Sim_check.Oracle.oracle
            f.Sim_check.Oracle.message)
        failures;
      1
  in
  Cmd.v
    (Cmd.info "repro"
       ~doc:
         "Replay a SimCheck case file deterministically and re-judge it \
          against the oracles")
    Term.(const run $ file_arg $ mutate_arg)

(* ----- learn ----- *)

let learn_cmd =
  let run seed =
    let rng = Sim_engine.Rng.create seed in
    let freq = Sim_engine.Units.ghz_f 2.33 in
    let slot = Sim_engine.Units.cycles_of_ms freq 10 in
    let profile = Sim_learn.Locality.default_profile ~slot_cycles:slot in
    let trace = Sim_learn.Locality.generate rng profile ~n:200 in
    let estimator =
      Sim_learn.Estimator.create
        (Sim_learn.Estimator.default_params ~slot_cycles:slot)
        (Sim_engine.Rng.split rng)
    in
    let windows =
      List.map
        (fun time -> (time, Sim_learn.Estimator.on_adjusting_event estimator ~now:time))
        (Sim_learn.Locality.event_times trace)
    in
    let hit, excess = Sim_learn.Locality.coverage trace ~windows in
    Printf.printf
      "localities: %d   adjusting events: %d\n\
       coverage of locality time by estimated windows: %.1f%%\n\
       over-coscheduling (window time outside localities): %.1f%%\n"
      (List.length trace.Sim_learn.Locality.localities)
      (Sim_learn.Estimator.events_seen estimator)
      (100. *. hit) (100. *. excess);
    let candidates = Sim_learn.Estimator.candidates estimator in
    let props = Sim_learn.Estimator.propensities estimator in
    Array.iteri
      (fun i c ->
        Printf.printf "  x = %6.1f ms   propensity %.4f\n"
          (Sim_engine.Units.ms_of_cycles freq c)
          props.(i))
      candidates;
    0
  in
  Cmd.v
    (Cmd.info "learn"
       ~doc:"Exercise the Roth-Erev estimator on a synthetic locality trace")
    Term.(const run $ seed_arg)

(* ----- compare ----- *)

let runs_dir_arg =
  let doc =
    "Registry directory for resolving bare run ids (default: $(b,ASMAN_RUNS) \
     or runs/)."
  in
  Arg.(value & opt (some string) None & info [ "runs-dir" ] ~doc ~docv:"DIR")

let compare_cmd =
  let old_arg =
    let doc = "Baseline: a run id, a record file, or a raw BENCH_*.json dump." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc)
  in
  let new_arg =
    let doc = "Candidate, same forms as $(i,OLD)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc)
  in
  let threshold_arg =
    let doc = "Regression threshold in percent (wall time, micro throughput)." in
    Arg.(
      value
      & opt float Reg.Compare.default.Reg.Compare.threshold
      & info [ "threshold" ] ~doc ~docv:"PCT")
  in
  let min_wall_arg =
    let doc = "Runs with an old wall time under $(docv) seconds are not gated." in
    Arg.(
      value
      & opt float Reg.Compare.default.Reg.Compare.min_wall
      & info [ "min-wall" ] ~doc ~docv:"SEC")
  in
  let fairness_threshold_arg =
    let doc = "Symmetric gate on fairness-ratio drift, in percent." in
    Arg.(
      value
      & opt float Reg.Compare.default.Reg.Compare.fairness_threshold
      & info [ "fairness-threshold" ] ~doc ~docv:"PCT")
  in
  let strict_sections_arg =
    let doc =
      "Treat a metric section that disappeared (present in OLD, absent in \
       NEW) as a regression: a broken suite must not pass by emitting fewer \
       sections."
    in
    Arg.(value & flag & info [ "strict-sections" ] ~doc)
  in
  let run old_file new_file threshold min_wall fairness_threshold
      strict_sections runs_dir =
    let resolve s =
      try Reg.Registry.resolve ?dir:runs_dir s with
      | Sys_error msg -> raise (Usage_error msg)
      | Reg.Cjson.Parse_error msg ->
        raise (Usage_error (Printf.sprintf "%s: %s" s msg))
    in
    let old_r = resolve old_file and new_r = resolve new_file in
    let t =
      {
        Reg.Compare.threshold;
        min_wall;
        fairness_threshold;
        strict_sections;
      }
    in
    let result = Reg.Compare.records t old_r new_r in
    print_string result.Reg.Compare.text;
    if result.Reg.Compare.regressions > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Diff two runs (performance, fairness and fuzzer health); exit 1 on \
          regression")
    Term.(
      const run $ old_arg $ new_arg $ threshold_arg $ min_wall_arg
      $ fairness_threshold_arg $ strict_sections_arg $ runs_dir_arg)

(* ----- report ----- *)

let report_cmd =
  let out_arg =
    let doc = "Output file for the HTML page." in
    Arg.(value & opt string "report.html" & info [ "out"; "o" ] ~doc ~docv:"FILE")
  in
  let run out runs_dir =
    let records = Reg.Registry.list ?dir:runs_dir () in
    if records = [] then
      raise
        (Usage_error
           (Printf.sprintf "no records in %s — run something first"
              (match runs_dir with
              | Some d -> d
              | None -> Option.value (Reg.Registry.dir ()) ~default:"runs")));
    let html = Reg.Html.report records in
    (* The page promises to be self-contained; hold it to that. *)
    (match Sim_obs.Json.validate_html html with
    | Ok () -> ()
    | Error msg -> failwith (Printf.sprintf "generated report invalid: %s" msg));
    write_file out html;
    Printf.printf "report: wrote %s (%d runs)\n" out (List.length records);
    0
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render the run registry as a self-contained HTML page of metric \
          trend lines (no external assets)")
    Term.(const run $ out_arg $ runs_dir_arg)

let main =
  let doc = "ASMan: dynamic adaptive scheduling for virtual machines (HPDC'11)" in
  Cmd.group (Cmd.info "asman_cli" ~doc)
    [
      list_cmd; experiment_cmd; ablation_cmd; cluster_cmd; run_cmd; trace_cmd;
      lhp_cmd; validate_json_cmd; learn_cmd; check_cmd; repro_cmd; compare_cmd;
      report_cmd;
    ]

(* Exit codes: 0 success, 1 run failure, 2 usage error. *)
let () =
  let code =
    try
      match Cmd.eval_value ~catch:false main with
      | Ok (`Ok code) -> code
      | Ok (`Help | `Version) -> 0
      | Error (`Parse | `Term) -> 2
      | Error `Exn -> 1
    with
    | Usage_error msg ->
      Printf.eprintf "asman_cli: %s\n" msg;
      2
    | e ->
      Printf.eprintf "asman_cli: run failed: %s\n" (Printexc.to_string e);
      1
  in
  exit code
