(* Event-queue micro-benchmark: wheel vs heap backend throughput at
   large pending-set sizes.

   Two steady-state workloads, each run against both backends with the
   same RNG seed so the op streams are identical:

   - "hold": classic timer-wheel hold pattern — pop the earliest
     event, schedule a replacement a random delay ahead. Pending count
     stays constant at N; measures the schedule+fire path.
   - "churn": schedule two events, cancel the first, pop one —
     the timer-reset pattern (timeslice/PLE/grace timers are armed and
     cancelled far more often than they fire); measures the cancel
     path.

   Delays are drawn from a mix of near (level-0), mid (level-1/2) and
   far wheel distances. Throughput is reported in events per second
   (one schedule+pop or schedule+cancel round = one event). *)

open Sim_engine

type result = {
  bench : string;
  backend : string;
  pending : int;
  ops : int;
  sec : float;
  ops_per_sec : float;
}

let nothing () = ()

let delay rng =
  (* Delays span the wheel levels the way a steady-state pending set
     of ~10^6 timers actually does: mostly mid-range (level 1-2), a
     short-delay head and a far tail. All-short delays at this pending
     count would mean tens of events per cycle, which no simulated
     workload sustains. *)
  match Rng.int_in rng ~lo:0 ~hi:19 with
  | 0 | 1 | 2 | 3 -> 1 + Rng.int_in rng ~lo:0 ~hi:(1 lsl 18)
  | 4 | 5 | 6 | 7 | 8 | 9 | 10 | 11 -> 1 + Rng.int_in rng ~lo:0 ~hi:(1 lsl 24)
  | 12 | 13 | 14 | 15 | 16 -> 1 + Rng.int_in rng ~lo:0 ~hi:(1 lsl 28)
  | _ -> 1 + Rng.int_in rng ~lo:0 ~hi:(1 lsl 33)

let preload q rng ~pending =
  let now = 0 in
  for _ = 1 to pending do
    ignore (Equeue.schedule q ~time:(now + delay rng) nothing)
  done

let run_bench bench kind ~pending ~ops =
  let q = Equeue.create kind in
  let rng = Rng.create 7L in
  preload q rng ~pending;
  let now = ref 0 in
  let t0 = Unix.gettimeofday () in
  (match bench with
  | "hold" ->
    for _ = 1 to ops do
      match Equeue.pop q with
      | Equeue.Event (time, _) ->
        now := time;
        ignore (Equeue.schedule q ~time:(time + delay rng) nothing)
      | Equeue.Beyond | Equeue.Empty -> ()
    done
  | "churn" ->
    for _ = 1 to ops do
      let h = Equeue.schedule q ~time:(!now + delay rng) nothing in
      ignore (Equeue.schedule q ~time:(!now + delay rng) nothing);
      ignore (Equeue.cancel q h);
      match Equeue.pop q with
      | Equeue.Event (time, _) -> now := time
      | Equeue.Beyond | Equeue.Empty -> ()
    done
  | _ -> invalid_arg "Micro.run_bench");
  let sec = Unix.gettimeofday () -. t0 in
  {
    bench;
    backend = Equeue.kind_name kind;
    pending;
    ops;
    sec;
    ops_per_sec = (if sec > 0. then float_of_int ops /. sec else 0.);
  }

let pendings = [ 100_000; 1_000_000; 10_000_000 ]

let ops_for pending = if pending >= 10_000_000 then 500_000 else 1_000_000

let run () =
  List.concat_map
    (fun bench ->
      List.concat_map
        (fun pending ->
          List.map
            (fun kind -> run_bench bench kind ~pending ~ops:(ops_for pending))
            [ Equeue.Wheel_queue; Equeue.Heap_queue ])
        pendings)
    [ "hold"; "churn" ]

let print results =
  print_endline
    "engine event-queue throughput (steady state, events per second):";
  List.iter
    (fun r ->
      Printf.printf "  %-6s %-6s %8d pending  %10.0f ev/s\n" r.bench r.backend
        r.pending r.ops_per_sec)
    results;
  (* Headline ratio: wheel over heap on the hold pattern at 10^6. *)
  let rate bench backend =
    List.find_opt
      (fun r -> r.bench = bench && r.backend = backend && r.pending = 1_000_000)
      results
  in
  (match (rate "hold" "wheel", rate "hold" "heap") with
  | Some w, Some h when h.ops_per_sec > 0. ->
    Printf.printf "  wheel/heap at 10^6 pending: %.2fx\n"
      (w.ops_per_sec /. h.ops_per_sec)
  | _ -> ());
  print_newline ()

let to_json_fragment results =
  String.concat ",\n"
    (List.map
       (fun r ->
         Printf.sprintf
           "    {\"bench\":\"%s\",\"backend\":\"%s\",\"pending\":%d,\
            \"ops\":%d,\"sec\":%.6f,\"ops_per_sec\":%.1f}"
           r.bench r.backend r.pending r.ops r.sec r.ops_per_sec)
       results)

(* ----- conservative-PDES throughput: events/sec per shard count and
   host size ------------------------------------------------------------

   Each PCPU of a big host owns [per-pcpu] self-rescheduling timer
   chains (the hold pattern above, one population per PCPU); chains
   live on the shard owning their PCPU, and roughly one firing in 64
   (chosen by hash bits) posts a cross-shard one-shot at >= lookahead
   ahead — the relocation/IPI traffic the conservative window is sized
   for. sim-jobs = 1 is the sequential single-queue reference (Shard
   with one shard degenerates to exactly the engine's pop-with-limit
   loop); sim-jobs = N runs the same event population partitioned N
   ways.

   Each chain's delay stream is a pure hash of (PCPU, fire time) — no
   per-chain state — so the multiset of fire times is independent of
   the partition; the commutative Shard.digest must therefore agree
   between -j1 and -jN, and the bench fails on any mismatch. The
   lookahead derives from the 10 ms slot quantum (slot/16 ~ 625 us,
   >> the modeled IPI latency), matching how cross-shard scheduler
   traffic is slot-granular. *)

type pdes_result = {
  p_pcpus : int;
  p_jobs : int;  (* shard count: the --sim-jobs axis *)
  p_workers : int;  (* worker domains actually used *)
  p_pending : int;
  p_events : int;
  p_sec : float;
  p_events_per_sec : float;
  p_windows : int;
  p_cross : int;
  p_digest : int;
}

let pdes_lookahead =
  Sim_hw.Cpu_model.slot_cycles Sim_hw.Cpu_model.default / 16

let run_pdes_once ?(kind = Equeue.Wheel_queue) ~pcpus ~jobs () =
  let shards = jobs in
  let shard_of p = p * shards / pcpus in
  let la = pdes_lookahead in
  let per_pcpu = if pcpus >= 256 then 1024 else 2048 in
  let until = 64 * la in
  let t = Shard.create ~queue:kind ~shards ~lookahead:la () in
  (* The delay stream is a pure function of (PCPU, fire time): an
     event firing at [time] on PCPU [p] reschedules at
     [time + g (p, time)]. The executed multiset of fire times is then
     fully determined by the initial population — independent of the
     partition (a chain's PCPU is its own property, not the shard's) —
     so the digest must agree across shard counts, and the harness
     needs no per-chain state at all (one shared closure per PCPU).
     Keying on the PCPU as well as the time keeps chains on distinct
     trajectories: a time-only hash would merge any two chains that
     ever collide, and merged chains reschedule into the same wheel
     slot — cache-hot inserts that flatter the single-queue baseline.
     Per-event bookkeeping is a handful of register ops; everything
     else an event does is queue work, which is precisely what
     sharding divides. *)
  let mask = (1 lsl 24) - 1 in
  let mix v =
    let h = v * 0x3E3779B97F4A7C15 in
    let h = (h lxor (h lsr 30)) * 0x14D049BB133111EB in
    (h lxor (h lsr 27)) land max_int
  in
  for p = 0 to pcpus - 1 do
    let sp = shard_of p in
    let sdst = shard_of ((p + (pcpus / 2)) mod pcpus) in
    let rec act () =
      let time = Shard.clock t ~shard:sp in
      let m = mix ((time lsl 8) lor (p land 0xFF)) in
      if (m lsr 24) land 63 = 0 then
        Shard.post t ~src:sp ~dst:sdst
          ~time:(time + la + 1 + ((m lsr 30) land mask))
          nothing;
      ignore (Shard.schedule t ~shard:sp ~time:(time + 1 + (m land mask)) act)
    in
    for k = 0 to per_pcpu - 1 do
      let key = (p * per_pcpu) + k in
      ignore
        (Shard.schedule t ~shard:sp ~time:(1 + (mix (key lsl 8) land mask)) act)
    done
  done;
  let workers = max 1 (min jobs (Domain.recommended_domain_count ())) in
  (* Level the GC playing field between sweep points: without this,
     garbage from the previous point's setup charges its collection
     cost to whichever run happens to trip the major slice. *)
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  Shard.run ~workers ~until t;
  let sec = Unix.gettimeofday () -. t0 in
  let events = Shard.events_fired t in
  {
    p_pcpus = pcpus;
    p_jobs = jobs;
    p_workers = workers;
    p_pending = pcpus * per_pcpu;
    p_events = events;
    p_sec = sec;
    p_events_per_sec = (if sec > 0. then float_of_int events /. sec else 0.);
    p_windows = Shard.windows t;
    p_cross = Shard.cross_posts t;
    p_digest = Shard.digest t;
  }

(* Best-of-N wall clock: the setup is deterministic (reps execute the
   identical event stream, checked via the digest), so the fastest rep
   is the least-interfered measurement — the standard defence against
   noisy-neighbour hosts in CI. Reps are organised as rounds over the
   whole sweep rather than consecutive runs of one point: interference
   lasting a minute then hits every point a little instead of
   swallowing all reps of whichever point it landed on, so one quiet
   round gives every row (and every ratio) its clean measurement. *)
let pdes_reps = 4

let pdes_sweep =
  [ (64, 1); (64, 4); (128, 1); (128, 2); (128, 4); (256, 1); (256, 4) ]

(* Returns the rows plus the fingerprint verdict: within a host size,
   every shard count must execute the identical event multiset. *)
let run_pdes_all ?kind () =
  let best = Array.make (List.length pdes_sweep) None in
  for _ = 1 to pdes_reps do
    List.iteri
      (fun i (pcpus, jobs) ->
        let r = run_pdes_once ?kind ~pcpus ~jobs () in
        match best.(i) with
        | None -> best.(i) <- Some r
        | Some b ->
          if r.p_digest <> b.p_digest then
            failwith "Micro.run_pdes_all: digest varies across identical reps";
          if r.p_events_per_sec > b.p_events_per_sec then best.(i) <- Some r)
      pdes_sweep
  done;
  let results = List.filter_map Fun.id (Array.to_list best) in
  let ok =
    List.for_all
      (fun r ->
        List.for_all
          (fun r' ->
            r'.p_pcpus <> r.p_pcpus
            || (r'.p_digest = r.p_digest && r'.p_events = r.p_events))
          results)
      results
  in
  (results, ok)

let pdes_ratio results ~pcpus ~jobs ~jobs_ref =
  let rate j =
    List.find_opt (fun r -> r.p_pcpus = pcpus && r.p_jobs = j) results
  in
  match (rate jobs, rate jobs_ref) with
  | Some a, Some b when b.p_events_per_sec > 0. ->
    Some (a.p_events_per_sec /. b.p_events_per_sec)
  | _ -> None

let print_pdes (results, ok) =
  print_endline
    "conservative PDES throughput (sharded hold pattern, events per second):";
  List.iter
    (fun r ->
      Printf.printf
        "  %4d pcpus  -j%d (%d worker%s)  %8d pending  %10.0f ev/s  %5d \
         windows  %6d cross\n"
        r.p_pcpus r.p_jobs r.p_workers
        (if r.p_workers = 1 then "" else "s")
        r.p_pending r.p_events_per_sec r.p_windows r.p_cross)
    results;
  (match pdes_ratio results ~pcpus:128 ~jobs:4 ~jobs_ref:1 with
  | Some ratio -> Printf.printf "  -j4 / -j1 at 128 pcpus: %.2fx\n" ratio
  | None -> ());
  Printf.printf "  -j1-vs-jN fingerprint: %s\n"
    (if ok then "identical" else "MISMATCH");
  print_newline ()

let pdes_to_json_fragment results =
  String.concat ",\n"
    (List.map
       (fun r ->
         Printf.sprintf
           "    {\"bench\":\"pdes-hold\",\"backend\":\"wheel\",\
            \"pcpus\":%d,\"sim_jobs\":%d,\"workers\":%d,\"pending\":%d,\
            \"ops\":%d,\"sec\":%.6f,\"ops_per_sec\":%.1f,\"windows\":%d,\
            \"cross_posts\":%d,\"digest\":\"%x\"}"
           r.p_pcpus r.p_jobs r.p_workers r.p_pending r.p_events r.p_sec
           r.p_events_per_sec r.p_windows r.p_cross r.p_digest)
       results)

(* ----- decoupled-VMM scenario bench (pdes-vmm) -----

   The real thing, not a synthetic hold pattern: full fig-style
   scenarios (overcommitted gang-scheduled guests on big hosts) run
   to a fixed round target, coupled vs decoupled. The coupled row is
   the classic single sequential engine over the whole host; the
   decoupled rows run the same VM population as 4 socket-aligned
   sub-hosts on the windowed fabric at 1/2/4 worker domains. Two
   axes fall out:

   - decoupled -j4 vs coupled -j1: sharding efficiency — four
     narrow VMMs (O(pcpus/4) scheduler scans, small queues) versus
     one wide one. Meaningful on any host.
   - w4 vs w1 within -j4: parallel speedup proper. Only moves on a
     multi-core host; the digest gate pins it to the exact same
     simulation either way.

   Decoupled outcomes must be worker-count invariant: any digest
   mismatch across w1/w2/w4 fails the bench (exit 1 from main). *)

type vmm_result = {
  m_pcpus : int;
  m_mode : string;  (* "coupled" | "w1" | "w2" | "w4" *)
  m_shards : int;  (* the --sim-jobs axis: 1 for the coupled row *)
  m_workers : int;
  m_vcpus : int;  (* total guest VCPUs (the size axis) *)
  m_events : int;
  m_sec : float;
  m_events_per_sec : float;
  m_sim_sec : float;
  m_windows : int;
  m_cross : int;
  m_grants : int;  (* completed cross-shard VM steals *)
  m_steal_latency : float;  (* mean request-to-arrival, cycles *)
  m_digest : int;  (* fabric digest; 0 for the coupled row *)
}

let vmm_rounds = 4
let vmm_max_sec = 120.

let vmm_config ~topology =
  {
    Asman.Config.default with
    Asman.Config.topology;
    scale = 0.05;
    seed = 11L;
  }

(* 20 VMs dealt over 4 shards = 5 per shard; VCPU counts are sized to
   overcommit each sub-host (gang parking windows are what make VMs
   quiescent, hence stealable). *)
let vmm_specs config ~vcpus =
  List.init 20 (fun i ->
      let name, desc =
        match i mod 4 with
        | 0 -> ("LU", Asman.Scenario.W_nas "LU")
        | 1 -> ("EP", Asman.Scenario.W_nas "EP")
        | 2 -> ("CG", Asman.Scenario.W_nas "CG")
        | _ -> ("gcc", Asman.Scenario.W_speccpu "gcc")
      in
      {
        Asman.Scenario.vm_name = Printf.sprintf "V%d:%s" (i + 1) name;
        weight = 256;
        vcpus;
        workload = Some (Asman.Scenario.workload_of_desc config desc);
      })

let run_vmm_coupled ~topology ~vcpus =
  let config = vmm_config ~topology in
  let specs = vmm_specs config ~vcpus in
  let scenario =
    Asman.Scenario.build config ~sched:Asman.Config.Asman ~vms:specs
  in
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let metrics =
    Asman.Runner.run_rounds scenario ~rounds:vmm_rounds ~max_sec:vmm_max_sec
  in
  let sec = Unix.gettimeofday () -. t0 in
  let events = metrics.Asman.Runner.events_fired in
  {
    m_pcpus = Sim_hw.Topology.pcpu_count topology;
    m_mode = "coupled";
    m_shards = 1;
    m_workers = 1;
    m_vcpus = 20 * vcpus;
    m_events = events;
    m_sec = sec;
    m_events_per_sec = (if sec > 0. then float_of_int events /. sec else 0.);
    m_sim_sec = metrics.Asman.Runner.wall_sec;
    m_windows = 0;
    m_cross = 0;
    m_grants = 0;
    m_steal_latency = 0.;
    m_digest = 0;
  }

let run_vmm_decoupled ~topology ~vcpus ~workers =
  let config =
    { (vmm_config ~topology) with Asman.Config.sim_jobs = 4; decouple = true }
  in
  let specs = vmm_specs config ~vcpus in
  let d = Asman.Decouple.build config ~sched:Asman.Config.Asman ~vms:specs in
  Gc.compact ();
  let r =
    Asman.Decouple.run ~workers d ~rounds:vmm_rounds ~max_sec:vmm_max_sec
  in
  {
    m_pcpus = Sim_hw.Topology.pcpu_count topology;
    m_mode = Printf.sprintf "w%d" workers;
    m_shards = r.Asman.Decouple.rp_shards;
    m_workers = r.Asman.Decouple.rp_workers;
    m_vcpus = 20 * vcpus;
    m_events = r.Asman.Decouple.rp_events;
    m_sec = r.Asman.Decouple.rp_wall_sec;
    m_events_per_sec =
      (if r.Asman.Decouple.rp_wall_sec > 0. then
         float_of_int r.Asman.Decouple.rp_events
         /. r.Asman.Decouple.rp_wall_sec
       else 0.);
    m_sim_sec = r.Asman.Decouple.rp_sim_sec;
    m_windows = r.Asman.Decouple.rp_windows;
    m_cross = r.Asman.Decouple.rp_cross_posts;
    m_grants = r.Asman.Decouple.rp_grants;
    m_steal_latency = r.Asman.Decouple.rp_mean_steal_latency_cycles;
    m_digest = r.Asman.Decouple.rp_digest;
  }

(* (topology, per-VM vcpus): 64- and 128-PCPU hosts, both ~1.25x
   overcommitted per shard. *)
let vmm_sweep =
  [ (Sim_hw.Topology.make ~sockets:4 ~cores_per_socket:16, 4);
    (Sim_hw.Topology.make ~sockets:8 ~cores_per_socket:16, 8) ]

let vmm_reps = 2

(* Best-of-N wall over full (build + run) repetitions, with the same
   rounds-over-the-sweep organisation as run_pdes_all; digests must
   agree across reps of the same point (the build is deterministic). *)
let run_vmm_all () =
  let points =
    List.concat_map
      (fun (topology, vcpus) ->
        [ (topology, vcpus, None);
          (topology, vcpus, Some 1);
          (topology, vcpus, Some 2);
          (topology, vcpus, Some 4) ])
      vmm_sweep
  in
  let best = Array.make (List.length points) None in
  for _ = 1 to vmm_reps do
    List.iteri
      (fun i (topology, vcpus, workers) ->
        let r =
          match workers with
          | None -> run_vmm_coupled ~topology ~vcpus
          | Some w -> run_vmm_decoupled ~topology ~vcpus ~workers:w
        in
        match best.(i) with
        | None -> best.(i) <- Some r
        | Some b ->
          if r.m_digest <> b.m_digest then
            failwith "Micro.run_vmm_all: digest varies across identical reps";
          if r.m_sec < b.m_sec then best.(i) <- Some r)
      points
  done;
  let results = List.filter_map Fun.id (Array.to_list best) in
  (* Worker-count invariance: within a host size, every decoupled row
     must be the exact same simulation. *)
  let ok =
    List.for_all
      (fun r ->
        r.m_shards = 1
        || List.for_all
             (fun r' ->
               r'.m_shards = 1 || r'.m_pcpus <> r.m_pcpus
               || (r'.m_digest = r.m_digest && r'.m_events = r.m_events))
             results)
      results
  in
  (results, ok)

let vmm_find results ~pcpus ~mode =
  List.find_opt (fun r -> r.m_pcpus = pcpus && r.m_mode = mode) results

let vmm_ratio results ~pcpus ~mode ~mode_ref =
  match
    (vmm_find results ~pcpus ~mode, vmm_find results ~pcpus ~mode:mode_ref)
  with
  | Some a, Some b when a.m_sec > 0. -> Some (b.m_sec /. a.m_sec)
  | _ -> None

let print_vmm (results, ok) =
  print_endline
    "decoupled VMM on the PDES fabric (fig-style scenarios, wall seconds to \
     finish the round target):";
  List.iter
    (fun r ->
      Printf.printf
        "  %4d pcpus  %-7s  -j%d  %3d vcpus  %7.3f s wall  %8.0f ev/s  %4d \
         windows  %5d cross  %2d steals\n"
        r.m_pcpus r.m_mode r.m_shards r.m_vcpus r.m_sec r.m_events_per_sec
        r.m_windows r.m_cross r.m_grants)
    results;
  List.iter
    (fun (topology, _) ->
      let pcpus = Sim_hw.Topology.pcpu_count topology in
      (match vmm_ratio results ~pcpus ~mode:"w1" ~mode_ref:"coupled" with
      | Some x ->
        Printf.printf "  %d pcpus: decoupled -j4(w1) vs coupled: %.2fx wall\n"
          pcpus x
      | None -> ());
      match vmm_ratio results ~pcpus ~mode:"w4" ~mode_ref:"w1" with
      | Some x -> Printf.printf "  %d pcpus: w4 vs w1: %.2fx wall\n" pcpus x
      | None -> ())
    vmm_sweep;
  Printf.printf "  w1-vs-wN digest: %s\n"
    (if ok then "identical" else "MISMATCH");
  print_newline ()

let vmm_to_json_fragment results =
  String.concat ",\n"
    (List.map
       (fun r ->
         Printf.sprintf
           "    {\"bench\":\"pdes-vmm\",\"backend\":\"%s\",\
            \"pcpus\":%d,\"sim_jobs\":%d,\"workers\":%d,\"pending\":%d,\
            \"ops\":%d,\"sec\":%.6f,\"ops_per_sec\":%.1f,\"sim_sec\":%.3f,\
            \"windows\":%d,\"cross_posts\":%d,\"steals\":%d,\
            \"steal_latency_cycles\":%.0f,\"digest\":\"%x\"}"
           r.m_mode r.m_pcpus r.m_shards r.m_workers r.m_vcpus r.m_events
           r.m_sec r.m_events_per_sec r.m_sim_sec r.m_windows r.m_cross
           r.m_grants r.m_steal_latency r.m_digest)
       results)
