(* Event-queue micro-benchmark: wheel vs heap backend throughput at
   large pending-set sizes.

   Two steady-state workloads, each run against both backends with the
   same RNG seed so the op streams are identical:

   - "hold": classic timer-wheel hold pattern — pop the earliest
     event, schedule a replacement a random delay ahead. Pending count
     stays constant at N; measures the schedule+fire path.
   - "churn": schedule two events, cancel the first, pop one —
     the timer-reset pattern (timeslice/PLE/grace timers are armed and
     cancelled far more often than they fire); measures the cancel
     path.

   Delays are drawn from a mix of near (level-0), mid (level-1/2) and
   far wheel distances. Throughput is reported in events per second
   (one schedule+pop or schedule+cancel round = one event). *)

open Sim_engine

type result = {
  bench : string;
  backend : string;
  pending : int;
  ops : int;
  sec : float;
  ops_per_sec : float;
}

let nothing () = ()

let delay rng =
  (* Delays span the wheel levels the way a steady-state pending set
     of ~10^6 timers actually does: mostly mid-range (level 1-2), a
     short-delay head and a far tail. All-short delays at this pending
     count would mean tens of events per cycle, which no simulated
     workload sustains. *)
  match Rng.int_in rng ~lo:0 ~hi:19 with
  | 0 | 1 | 2 | 3 -> 1 + Rng.int_in rng ~lo:0 ~hi:(1 lsl 18)
  | 4 | 5 | 6 | 7 | 8 | 9 | 10 | 11 -> 1 + Rng.int_in rng ~lo:0 ~hi:(1 lsl 24)
  | 12 | 13 | 14 | 15 | 16 -> 1 + Rng.int_in rng ~lo:0 ~hi:(1 lsl 28)
  | _ -> 1 + Rng.int_in rng ~lo:0 ~hi:(1 lsl 33)

let preload q rng ~pending =
  let now = 0 in
  for _ = 1 to pending do
    ignore (Equeue.schedule q ~time:(now + delay rng) nothing)
  done

let run_bench bench kind ~pending ~ops =
  let q = Equeue.create kind in
  let rng = Rng.create 7L in
  preload q rng ~pending;
  let now = ref 0 in
  let t0 = Unix.gettimeofday () in
  (match bench with
  | "hold" ->
    for _ = 1 to ops do
      match Equeue.pop q with
      | Equeue.Event (time, _) ->
        now := time;
        ignore (Equeue.schedule q ~time:(time + delay rng) nothing)
      | Equeue.Beyond | Equeue.Empty -> ()
    done
  | "churn" ->
    for _ = 1 to ops do
      let h = Equeue.schedule q ~time:(!now + delay rng) nothing in
      ignore (Equeue.schedule q ~time:(!now + delay rng) nothing);
      ignore (Equeue.cancel q h);
      match Equeue.pop q with
      | Equeue.Event (time, _) -> now := time
      | Equeue.Beyond | Equeue.Empty -> ()
    done
  | _ -> invalid_arg "Micro.run_bench");
  let sec = Unix.gettimeofday () -. t0 in
  {
    bench;
    backend = Equeue.kind_name kind;
    pending;
    ops;
    sec;
    ops_per_sec = (if sec > 0. then float_of_int ops /. sec else 0.);
  }

let pendings = [ 100_000; 1_000_000; 10_000_000 ]

let ops_for pending = if pending >= 10_000_000 then 500_000 else 1_000_000

let run () =
  List.concat_map
    (fun bench ->
      List.concat_map
        (fun pending ->
          List.map
            (fun kind -> run_bench bench kind ~pending ~ops:(ops_for pending))
            [ Equeue.Wheel_queue; Equeue.Heap_queue ])
        pendings)
    [ "hold"; "churn" ]

let print results =
  print_endline
    "engine event-queue throughput (steady state, events per second):";
  List.iter
    (fun r ->
      Printf.printf "  %-6s %-6s %8d pending  %10.0f ev/s\n" r.bench r.backend
        r.pending r.ops_per_sec)
    results;
  (* Headline ratio: wheel over heap on the hold pattern at 10^6. *)
  let rate bench backend =
    List.find_opt
      (fun r -> r.bench = bench && r.backend = backend && r.pending = 1_000_000)
      results
  in
  (match (rate "hold" "wheel", rate "hold" "heap") with
  | Some w, Some h when h.ops_per_sec > 0. ->
    Printf.printf "  wheel/heap at 10^6 pending: %.2fx\n"
      (w.ops_per_sec /. h.ops_per_sec)
  | _ -> ());
  print_newline ()

let to_json_fragment results =
  String.concat ",\n"
    (List.map
       (fun r ->
         Printf.sprintf
           "    {\"bench\":\"%s\",\"backend\":\"%s\",\"pending\":%d,\
            \"ops\":%d,\"sec\":%.6f,\"ops_per_sec\":%.1f}"
           r.bench r.backend r.pending r.ops r.sec r.ops_per_sec)
       results)
