(* The benchmark harness: regenerates every figure of the paper's
   evaluation (Figures 1, 2, 7-12 — the paper has no numbered tables)
   and micro-benchmarks the simulator's core primitives with Bechamel.

     dune exec bench/main.exe              # figures + ablations + micro
     dune exec bench/main.exe -- fig7      # one figure
     dune exec bench/main.exe -- ablations # only the ablation studies
     dune exec bench/main.exe -- micro     # only the micro-benchmarks
     dune exec bench/main.exe -- -j 4      # fan jobs over 4 domains
     dune exec bench/main.exe -- --json out.json   # dump timings
     dune exec bench/main.exe -- --engine-queue=heap  # heap oracle
     BENCH_SCALE=0.5 dune exec bench/main.exe   # bigger workloads
     ASMAN_JOBS=4 dune exec bench/main.exe      # worker count via env
     BENCH_COST_CACHE=f dune exec bench/main.exe  # cost cache file

   Figure/ablation data points fan out over Asman.Pool worker domains
   (-j N or ASMAN_JOBS; default: cores - 1; -j 1 = sequential). With
   --json [FILE] the per-figure and per-job wall-clock timings plus
   the worker count are dumped to FILE (default BENCH_<date>.json) so
   the perf trajectory is tracked across PRs; scripts/bench_diff (or
   `asman compare`) compares two dumps. --engine-queue selects the
   event-queue backend (default wheel; results are byte-identical
   either way). Per-job wall times persist in BENCH_COST_CACHE
   (default runs/cost_cache; empty disables) so repeat runs schedule
   longest jobs first.

   Every invocation also drops a metadata-stamped record into the run
   registry (runs/ by default; ASMAN_RUNS= disables) — see
   lib/registry. Recording is observation-only: the note goes to
   stderr and stdout is byte-identical with recording on or off. *)

open Asman

let scale =
  match Sys.getenv_opt "BENCH_SCALE" with
  | Some s -> (
    match float_of_string_opt s with
    | Some f when f > 0. -> f
    | Some _ | None -> Config.default.Config.scale)
  | None -> Config.default.Config.scale

(* Every run in this harness charges the runner's phases
   (engine.run/collect, summed across Pool workers) to one shared
   self-profiler; the sections land in the --json dump next to the
   wall-clock timings. Profiling does not perturb simulation results —
   only trace/metrics flags stay off. *)
let prof = Sim_obs.Prof.create ~clock:Unix.gettimeofday ()

let config =
  {
    (Config.with_scale Config.default scale) with
    Config.obs = { Config.obs_off with Config.profile = Some prof };
  }

(* ----- per-run timing records (for the report and --json) ----- *)

type timing_entry = {
  entry_id : string;
  wall_sec : float;
  stats : Pool.stats;
}

(* Reversed run order. *)
let recorded : timing_entry list ref = ref []

(* Tagging the run's jobs with its id feeds the persistent LPT cost
   cache: the next regeneration of the same figure starts its longest
   jobs first (see Pool's cost-aware ordering). *)
let timed id f =
  Pool.reset_accounting ();
  Pool.set_job_group (Some id);
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let wall_sec = Unix.gettimeofday () -. t0 in
  Pool.set_job_group None;
  let stats = Pool.accounting () in
  recorded := { entry_id = id; wall_sec; stats } :: !recorded;
  Sim_obs.Prof.add prof ("run." ^ id) wall_sec;
  (result, wall_sec, stats)

let speedup ~wall_sec (stats : Pool.stats) =
  if wall_sec > 0. then stats.Pool.busy_sec /. wall_sec else 1.

let print_timing id wall_sec (stats : Pool.stats) =
  Printf.printf
    "(%s regenerated in %.1f s host wall: %d jobs over %d workers, busy \
     %.1f s, speedup %.2fx)\n\n%!"
    id wall_sec
    (List.length stats.Pool.timings)
    stats.Pool.jobs_used stats.Pool.busy_sec (speedup ~wall_sec stats)

(* ----- figure regeneration ----- *)

(* Fairness entries from the theft figure: one
   "<series label> <attack>" -> attained/entitled ratio per cell.
   Dumped as the "fairness" JSON section so scripts/bench_diff can
   gate attained-share drift next to the wall-clock timings. *)
let fairness_results : (string * float) list ref = ref []

let capture_fairness (outcome : Experiments.outcome) =
  fairness_results := !fairness_results @ Experiments.fairness_entries outcome

let run_experiment (e : Experiments.t) =
  let id = e.Experiments.id in
  let outcome, wall_sec, stats = timed id (fun () -> e.Experiments.run config) in
  if id = "theft" then capture_fairness outcome;
  print_string (Report.outcome e outcome);
  print_timing id wall_sec stats

let run_figures ids =
  Printf.printf
    "ASMan reproduction — figure regeneration (workload scale %g, seed %Ld, \
     %d worker domains)\n\
     Absolute times are simulator scale; compare shapes and ratios with the\n\
     paper columns printed next to each measured table.\n\n%!"
    scale config.Config.seed (Pool.jobs ());
  List.iter
    (fun id ->
      match Experiments.find id with
      | Some e -> run_experiment e
      | None -> Printf.eprintf "unknown figure id %s\n" id)
    ids

(* ----- ablation studies ----- *)

let run_ablation (a : Ablations.t) =
  let id = a.Ablations.id in
  let outcome, wall_sec, stats = timed id (fun () -> a.Ablations.run config) in
  let as_experiment =
    {
      Experiments.id;
      title = a.Ablations.title;
      description = a.Ablations.description;
      run = a.Ablations.run;
    }
  in
  print_string (Report.outcome as_experiment outcome);
  print_timing id wall_sec stats

let run_ablations () =
  print_endline "--- ablation studies (DESIGN.md design choices) ---\n";
  List.iter run_ablation Ablations.all

(* ----- machine-readable timing dump (--json) ----- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let date_string () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let default_json_file () = Printf.sprintf "BENCH_%s.json" (date_string ())

(* Event-queue micro results (bench/micro.ml), when that suite ran. *)
let micro_results : Micro.result list ref = ref []

(* Conservative-PDES sweep results and fingerprint verdict, when that
   suite ran; rows are merged into the "micro" JSON array. *)
let pdes_results : Micro.pdes_result list ref = ref []

let pdes_ok = ref true

(* Decoupled-VMM scenario rows and the w1-vs-wN digest verdict, when
   that suite ran; rows merge into the same "micro" JSON array. *)
let vmm_results : Micro.vmm_result list ref = ref []

let vmm_ok = ref true

let write_json path =
  let entries = List.rev !recorded in
  let total_wall = List.fold_left (fun s e -> s +. e.wall_sec) 0. entries in
  let entry_json e =
    let job_secs =
      String.concat ","
        (List.map
           (fun (t : Pool.job_timing) -> Printf.sprintf "%.6f" t.Pool.wall_sec)
           e.stats.Pool.timings)
    in
    Printf.sprintf
      "    {\"id\":\"%s\",\"wall_sec\":%.6f,\"busy_sec\":%.6f,\"jobs\":%d,\
       \"workers\":%d,\"speedup\":%.3f,\"job_sec\":[%s]}"
      (json_escape e.entry_id) e.wall_sec e.stats.Pool.busy_sec
      (List.length e.stats.Pool.timings)
      e.stats.Pool.jobs_used
      (speedup ~wall_sec:e.wall_sec e.stats)
      job_secs
  in
  (* Section present only when the theft figure ran: bench_diff
     reports (never gates) a section missing from one side. *)
  let fairness_section =
    match !fairness_results with
    | [] -> ""
    | entries ->
      Printf.sprintf "  \"fairness\": [\n%s\n  ],\n"
        (String.concat ",\n"
           (List.map
              (fun (id, ratio) ->
                Printf.sprintf "    {\"id\":\"%s\",\"ratio\":%.6f}"
                  (json_escape id) ratio)
              entries))
  in
  (* Provenance stamps (satellite of the run registry): which tree,
     which machine axes. Older dumps without them still ingest — the
     readers default every stamp. *)
  let git_stamp =
    match Sim_registry.Meta.git_info () with
    | None -> ""
    | Some (sha, dirty) ->
      Printf.sprintf "  \"git_sha\": \"%s\",\n  \"git_dirty\": %b,\n"
        (json_escape sha) dirty
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
     \  \"date\": \"%s\",\n\
     \  \"scale\": %g,\n\
     \  \"seed\": %Ld,\n\
     \  \"workers\": %d,\n\
     \  \"queue\": \"%s\",\n\
     %s\
     \  \"accounting\": \"%s\",\n\
     \  \"sim_jobs\": %d,\n\
     \  \"topology\": \"%s\",\n\
     \  \"numa\": %b,\n\
     \  \"total_wall_sec\": %.6f,\n\
     \  \"runs\": [\n%s\n\
     \  ],\n\
     \  \"micro\": [\n%s\n\
     \  ],\n\
     %s\
     \  \"profile\": [%s]\n\
     }\n"
    (date_string ()) scale config.Config.seed (Pool.jobs ())
    (Sim_engine.Equeue.kind_name (Sim_engine.Engine.default_queue ()))
    git_stamp
    (Sim_vmm.Vmm.accounting_name config.Config.accounting)
    config.Config.sim_jobs
    (json_escape (Sim_hw.Topology.to_string config.Config.topology))
    config.Config.numa total_wall
    (String.concat ",\n" (List.map entry_json entries))
    (String.concat ",\n"
       (List.filter
          (fun s -> s <> "")
          [
            Micro.to_json_fragment !micro_results;
            Micro.pdes_to_json_fragment !pdes_results;
            Micro.vmm_to_json_fragment !vmm_results;
          ]))
    fairness_section
    (Sim_obs.Prof.to_json_fragment prof);
  close_out oc;
  Printf.printf "timings written to %s\n%!" path

(* ----- run-registry record (lib/registry) ----- *)

module Reg = Sim_registry

(* The record's sections mirror the --json dump shapes so `asman
   compare` treats a record and a raw dump interchangeably. Micro rows
   are round-tripped through Cjson from the same fragments write_json
   emits. *)
let registry_sections () =
  let entries = List.rev !recorded in
  let runs =
    Reg.Cjson.List
      (List.map
         (fun e ->
           Reg.Cjson.Obj
             [
               ("id", Reg.Cjson.String e.entry_id);
               ("wall_sec", Reg.Cjson.Float e.wall_sec);
               ("busy_sec", Reg.Cjson.Float e.stats.Pool.busy_sec);
               ("jobs", Reg.Cjson.Int (List.length e.stats.Pool.timings));
               ("workers", Reg.Cjson.Int e.stats.Pool.jobs_used);
               ("speedup", Reg.Cjson.Float (speedup ~wall_sec:e.wall_sec e.stats));
             ])
         entries)
  in
  let micro_rows =
    String.concat ","
      (List.filter
         (fun s -> s <> "")
         [
           Micro.to_json_fragment !micro_results;
           Micro.pdes_to_json_fragment !pdes_results;
           Micro.vmm_to_json_fragment !vmm_results;
         ])
  in
  let micro = Reg.Cjson.of_string ("[" ^ micro_rows ^ "]") in
  let fairness =
    Reg.Cjson.List
      (List.map
         (fun (id, ratio) ->
           Reg.Cjson.Obj
             [ ("id", Reg.Cjson.String id); ("ratio", Reg.Cjson.Float ratio) ])
         !fairness_results)
  in
  Reg.Cjson.Obj
    (("runs", runs) :: ("micro", micro)
    ::
    (match !fairness_results with
    | [] -> []
    | _ -> [ ("fairness", fairness) ]))

let record_run ~ids ~json =
  let label =
    match ids with
    | [] -> "bench all"
    | ids -> "bench " ^ String.concat " " ids
  in
  let kind = match ids with [ "theft" ] -> "theft" | _ -> "bench" in
  let entries = List.rev !recorded in
  let wall_sec = List.fold_left (fun s e -> s +. e.wall_sec) 0. entries in
  let busy_sec =
    List.fold_left (fun s e -> s +. e.stats.Pool.busy_sec) 0. entries
  in
  let spec =
    Reg.Cjson.Obj
      [
        ( "argv",
          Reg.Cjson.List
            (List.map
               (fun s -> Reg.Cjson.String s)
               (List.tl (Array.to_list Sys.argv))) );
        ("scale", Reg.Cjson.Float scale);
      ]
  in
  let r =
    Reg.Record.make
      ~id:(Reg.Registry.fresh_id ~kind)
      ~kind ~seed:config.Config.seed ~scale
      ~queue:(Sim_engine.Equeue.kind_name (Sim_engine.Engine.default_queue ()))
      ~workers:(Pool.jobs ()) ~sim_jobs:config.Config.sim_jobs
      ~topology:(Sim_hw.Topology.to_string config.Config.topology)
      ~numa:config.Config.numa
      ~accounting:(Sim_vmm.Vmm.accounting_name config.Config.accounting)
      ~label ~spec ~wall_sec ~busy_sec
      ~sections:(registry_sections ())
      ~exports:(match json with Some p -> [ p ] | None -> [])
      ()
  in
  (* Observation-only: the note goes to stderr so stdout stays
     byte-identical with recording on or off. *)
  match Reg.Registry.save_if_enabled r with
  | Some path -> Printf.eprintf "run recorded: %s\n%!" path
  | None -> ()

(* ----- Bechamel micro-benchmarks ----- *)

let pdes_suite () =
  let results, ok = Micro.run_pdes_all () in
  pdes_results := results;
  pdes_ok := ok;
  Micro.print_pdes (results, ok)

let pdes_vmm_suite () =
  let results, ok = Micro.run_vmm_all () in
  vmm_results := results;
  vmm_ok := ok;
  Micro.print_vmm (results, ok)

let microbenchmarks () =
  (* Event-queue throughput first: plain wall-clock over fixed op
     counts (bechamel's small quotas don't fit 10^7-pending setups). *)
  let eq = Micro.run () in
  micro_results := eq;
  Micro.print eq;
  pdes_suite ();
  pdes_vmm_suite ();
  let open Bechamel in
  let freq = Config.freq config in
  (* One Test.make per core primitive of the simulator. *)
  let test_heap =
    Test.make ~name:"heap push+pop (256 elems)"
      (Staged.stage (fun () ->
           let h = Sim_engine.Heap.create () in
           for i = 0 to 255 do
             Sim_engine.Heap.add h ~key:((i * 7919) mod 997) ~seq:i i
           done;
           let rec drain () =
             match Sim_engine.Heap.pop h with Some _ -> drain () | None -> ()
           in
           drain ()))
  in
  let test_rng =
    Test.make ~name:"rng lognormal draw"
      (let rng = Sim_engine.Rng.create 1L in
       Staged.stage (fun () ->
           ignore (Sim_engine.Rng.lognormal_cv rng ~mean:100. ~cv:0.2)))
  in
  let test_engine =
    Test.make ~name:"engine schedule+fire (64 events)"
      (Staged.stage (fun () ->
           let e = Sim_engine.Engine.create () in
           for i = 1 to 64 do
             ignore (Sim_engine.Engine.schedule_at e ~time:i (fun () -> ()))
           done;
           Sim_engine.Engine.run e))
  in
  let test_estimator =
    Test.make ~name:"estimator adjusting event"
      (let slot = Sim_hw.Cpu_model.slot_cycles config.Config.cpu in
       let est =
         Sim_learn.Estimator.create
           (Sim_learn.Estimator.default_params ~slot_cycles:slot)
           (Sim_engine.Rng.create 2L)
       in
       let now = ref 0 in
       Staged.stage (fun () ->
           now := !now + slot;
           ignore (Sim_learn.Estimator.on_adjusting_event est ~now:!now)))
  in
  let test_histogram =
    Test.make ~name:"histogram add"
      (let h = Sim_stats.Histogram.create () in
       let i = ref 1 in
       Staged.stage (fun () ->
           i := ((!i * 1103515245) + 12345) land 0xFFFFFF;
           Sim_stats.Histogram.add h !i))
  in
  let test_pool =
    Test.make ~name:"pool map (32 jobs)"
      (Staged.stage (fun () ->
           ignore (Pool.map (fun x -> x * x) (List.init 32 Fun.id))))
  in
  let test_sim_slice =
    Test.make ~name:"simulate 100ms of LU@40% (asman)"
      (Staged.stage (fun () ->
           let c = Config.with_scale config 0.02 in
           let workload =
             Sim_workloads.Nas.workload
               (Sim_workloads.Nas.params Sim_workloads.Nas.LU ~freq ~scale:0.02)
           in
           let s =
             Scenario.build
               (Config.with_work_conserving c false)
               ~sched:Config.Asman
               ~vms:
                 [ { Scenario.vm_name = "V"; weight = 64; vcpus = 4;
                     workload = Some workload } ]
           in
           ignore (Runner.run_window s ~sec:0.1)))
  in
  let tests =
    Test.make_grouped ~name:"asman" ~fmt:"%s %s"
      [
        test_heap; test_rng; test_engine; test_estimator; test_histogram;
        test_pool; test_sim_slice;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  print_endline "micro-benchmarks (nanoseconds per run, OLS estimate):";
  Hashtbl.iter
    (fun _measure_label per_test ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.printf "  %-45s %14.1f ns\n" name est
          | Some [] | None -> Printf.printf "  %-45s (no estimate)\n" name)
        per_test)
    merged;
  print_newline ()

(* ----- argument parsing ----- *)

type opts = {
  jobs : int option;
  json : string option;
  queue : Sim_engine.Engine.queue_kind option;
  ids : string list;
}

let usage () =
  prerr_endline
    "usage: main.exe [-j N] [--json [FILE]] [--engine-queue=wheel|heap] \
     [micro|pdes|pdes-vmm|ablations|chaos|<figure ids>]";
  exit 2

let parse_args args =
  let rec go acc = function
    | [] -> { acc with ids = List.rev acc.ids }
    | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 -> go { acc with jobs = Some j } rest
      | Some _ | None ->
        prerr_endline "-j needs a positive integer";
        usage ())
    | [ "-j" ] ->
      prerr_endline "-j needs a positive integer";
      usage ()
    | "--json" :: f :: rest when Filename.check_suffix f ".json" ->
      go { acc with json = Some f } rest
    | "--json" :: rest -> go { acc with json = Some (default_json_file ()) } rest
    | arg :: rest
      when String.length arg > 15
           && String.sub arg 0 15 = "--engine-queue=" -> (
      let name = String.sub arg 15 (String.length arg - 15) in
      match Sim_engine.Equeue.kind_of_name name with
      | Some k -> go { acc with queue = Some k } rest
      | None ->
        prerr_endline "--engine-queue takes wheel or heap";
        usage ())
    | "--engine-queue" :: name :: rest -> (
      match Sim_engine.Equeue.kind_of_name name with
      | Some k -> go { acc with queue = Some k } rest
      | None ->
        prerr_endline "--engine-queue takes wheel or heap";
        usage ())
    | id :: rest -> go { acc with ids = id :: acc.ids } rest
  in
  go { jobs = None; json = None; queue = None; ids = [] } args

(* Persistent LPT cost cache: per-job wall times from earlier bench
   runs, used to start each figure's longest jobs first. Lives next to
   the registry records (runs/cost_cache). *)
let cost_cache_file =
  match Sys.getenv_opt "BENCH_COST_CACHE" with
  | Some "" -> None
  | Some f -> Some f
  | None -> Some (Filename.concat "runs" "cost_cache")

let load_cost_cache () =
  match cost_cache_file with
  | None -> ()
  | Some f -> Pool.load_cost_cache f

let save_cost_cache () =
  match cost_cache_file with
  | None -> ()
  | Some f ->
    Reg.Registry.ensure_dir (Filename.dirname f);
    Pool.save_cost_cache f

let () =
  let opts = parse_args (List.tl (Array.to_list Sys.argv)) in
  (match opts.jobs with Some j -> Pool.set_jobs j | None -> ());
  (match opts.queue with
  | Some k -> Sim_engine.Engine.set_default_queue k
  | None -> ());
  load_cost_cache ();
  (match opts.ids with
  | [] ->
    run_figures (Experiments.ids ());
    run_ablations ();
    microbenchmarks ()
  | [ "micro" ] -> microbenchmarks ()
  | [ "pdes" ] -> pdes_suite ()
  | [ "pdes-vmm" ] -> pdes_vmm_suite ()
  | [ "ablations" ] -> run_ablations ()
  | [ "chaos" ] -> run_figures [ "resilience" ]
  | ids ->
    List.iter
      (fun id ->
        match (Experiments.find id, Ablations.find id) with
        | Some e, _ -> run_experiment e
        | None, Some a -> run_ablation a
        | None, None -> Printf.eprintf "unknown id %s\n" id)
      ids);
  save_cost_cache ();
  (match opts.json with Some path -> write_json path | None -> ());
  record_run ~ids:opts.ids ~json:opts.json;
  if not !pdes_ok then begin
    prerr_endline "pdes: -j1-vs-jN fingerprint mismatch";
    exit 1
  end;
  if not !vmm_ok then begin
    prerr_endline "pdes-vmm: w1-vs-wN decoupled digest mismatch";
    exit 1
  end
