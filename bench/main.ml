(* The benchmark harness: regenerates every figure of the paper's
   evaluation (Figures 1, 2, 7-12 — the paper has no numbered tables)
   and micro-benchmarks the simulator's core primitives with Bechamel.

     dune exec bench/main.exe              # figures + ablations + micro
     dune exec bench/main.exe -- fig7      # one figure
     dune exec bench/main.exe -- ablations # only the ablation studies
     dune exec bench/main.exe -- micro     # only the micro-benchmarks
     BENCH_SCALE=0.5 dune exec bench/main.exe   # bigger workloads *)

open Asman

let scale =
  match Sys.getenv_opt "BENCH_SCALE" with
  | Some s -> (
    match float_of_string_opt s with
    | Some f when f > 0. -> f
    | Some _ | None -> Config.default.Config.scale)
  | None -> Config.default.Config.scale

let config = Config.with_scale Config.default scale

(* ----- figure regeneration ----- *)

let run_experiment (e : Experiments.t) =
  let t0 = Unix.gettimeofday () in
  let outcome = e.Experiments.run config in
  let elapsed = Unix.gettimeofday () -. t0 in
  print_string (Report.outcome e outcome);
  Printf.printf "(%s regenerated in %.1f s of host time)\n\n%!"
    e.Experiments.id elapsed

let run_figures ids =
  Printf.printf
    "ASMan reproduction — figure regeneration (workload scale %g, seed %Ld)\n\
     Absolute times are simulator scale; compare shapes and ratios with the\n\
     paper columns printed next to each measured table.\n\n%!"
    scale config.Config.seed;
  List.iter
    (fun id ->
      match Experiments.find id with
      | Some e -> run_experiment e
      | None -> Printf.eprintf "unknown figure id %s\n" id)
    ids

(* ----- ablation studies ----- *)

let run_ablation (a : Ablations.t) =
  let t0 = Unix.gettimeofday () in
  let outcome = a.Ablations.run config in
  let elapsed = Unix.gettimeofday () -. t0 in
  let as_experiment =
    {
      Experiments.id = a.Ablations.id;
      title = a.Ablations.title;
      description = a.Ablations.description;
      run = a.Ablations.run;
    }
  in
  print_string (Report.outcome as_experiment outcome);
  Printf.printf "(%s ran in %.1f s of host time)\n\n%!" a.Ablations.id elapsed

let run_ablations () =
  print_endline "--- ablation studies (DESIGN.md design choices) ---\n";
  List.iter run_ablation Ablations.all

(* ----- Bechamel micro-benchmarks ----- *)

let microbenchmarks () =
  let open Bechamel in
  let freq = Config.freq config in
  (* One Test.make per core primitive of the simulator. *)
  let test_heap =
    Test.make ~name:"heap push+pop (256 elems)"
      (Staged.stage (fun () ->
           let h = Sim_engine.Heap.create () in
           for i = 0 to 255 do
             Sim_engine.Heap.add h ~key:((i * 7919) mod 997) ~seq:i i
           done;
           let rec drain () =
             match Sim_engine.Heap.pop h with Some _ -> drain () | None -> ()
           in
           drain ()))
  in
  let test_rng =
    Test.make ~name:"rng lognormal draw"
      (let rng = Sim_engine.Rng.create 1L in
       Staged.stage (fun () ->
           ignore (Sim_engine.Rng.lognormal_cv rng ~mean:100. ~cv:0.2)))
  in
  let test_engine =
    Test.make ~name:"engine schedule+fire (64 events)"
      (Staged.stage (fun () ->
           let e = Sim_engine.Engine.create () in
           for i = 1 to 64 do
             ignore (Sim_engine.Engine.schedule_at e ~time:i (fun () -> ()))
           done;
           Sim_engine.Engine.run e))
  in
  let test_estimator =
    Test.make ~name:"estimator adjusting event"
      (let slot = Sim_hw.Cpu_model.slot_cycles config.Config.cpu in
       let est =
         Sim_learn.Estimator.create
           (Sim_learn.Estimator.default_params ~slot_cycles:slot)
           (Sim_engine.Rng.create 2L)
       in
       let now = ref 0 in
       Staged.stage (fun () ->
           now := !now + slot;
           ignore (Sim_learn.Estimator.on_adjusting_event est ~now:!now)))
  in
  let test_histogram =
    Test.make ~name:"histogram add"
      (let h = Sim_stats.Histogram.create () in
       let i = ref 1 in
       Staged.stage (fun () ->
           i := ((!i * 1103515245) + 12345) land 0xFFFFFF;
           Sim_stats.Histogram.add h !i))
  in
  let test_sim_slice =
    Test.make ~name:"simulate 100ms of LU@40% (asman)"
      (Staged.stage (fun () ->
           let c = Config.with_scale config 0.02 in
           let workload =
             Sim_workloads.Nas.workload
               (Sim_workloads.Nas.params Sim_workloads.Nas.LU ~freq ~scale:0.02)
           in
           let s =
             Scenario.build
               (Config.with_work_conserving c false)
               ~sched:Config.Asman
               ~vms:
                 [ { Scenario.vm_name = "V"; weight = 64; vcpus = 4;
                     workload = Some workload } ]
           in
           ignore (Runner.run_window s ~sec:0.1)))
  in
  let tests =
    Test.make_grouped ~name:"asman" ~fmt:"%s %s"
      [
        test_heap; test_rng; test_engine; test_estimator; test_histogram;
        test_sim_slice;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  print_endline "micro-benchmarks (nanoseconds per run, OLS estimate):";
  Hashtbl.iter
    (fun _measure_label per_test ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.printf "  %-45s %14.1f ns\n" name est
          | Some [] | None -> Printf.printf "  %-45s (no estimate)\n" name)
        per_test)
    merged;
  print_newline ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
    run_figures (Experiments.ids ());
    run_ablations ();
    microbenchmarks ()
  | [ "micro" ] -> microbenchmarks ()
  | [ "ablations" ] -> run_ablations ()
  | ids ->
    List.iter
      (fun id ->
        match (Experiments.find id, Ablations.find id) with
        | Some e, _ -> run_experiment e
        | None, Some a -> run_ablation a
        | None, None -> Printf.eprintf "unknown id %s\n" id)
      ids
