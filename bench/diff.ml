(* Compare two bench dumps / registry records and flag regressions.

     diff.exe OLD NEW [--threshold PCT] [--min-wall SEC]
                      [--fairness-threshold PCT] [--strict-sections]

   A thin wrapper over the run registry's regression engine
   (lib/registry/compare.ml): OLD and NEW may be raw BENCH_*.json
   dumps (the historical input, ingested losslessly), registry record
   files, or bare run ids resolved against the registry directory
   ($ASMAN_RUNS, default runs/). `asman compare` exposes the same
   engine; this executable survives for scripts/bench_diff and CI
   muscle memory.

   Exits 1 if any gated entry regressed past its threshold; see
   Sim_registry.Compare for the per-section verdict rules.
   --strict-sections additionally turns a section that disappeared
   (present in OLD, absent in NEW) into a regression, so a broken
   suite cannot pass by emitting fewer sections. *)

let usage () =
  prerr_endline
    "usage: diff.exe OLD NEW [--threshold PCT] [--min-wall SEC] \
     [--fairness-threshold PCT] [--strict-sections]";
  exit 2

let () =
  let files = ref [] in
  let t = ref Sim_registry.Compare.default in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some pct when pct > 0. ->
        t := { !t with Sim_registry.Compare.threshold = pct };
        parse rest
      | Some _ | None ->
        prerr_endline "--threshold needs a positive number";
        usage ())
    | "--min-wall" :: v :: rest -> (
      match float_of_string_opt v with
      | Some sec when sec >= 0. ->
        t := { !t with Sim_registry.Compare.min_wall = sec };
        parse rest
      | Some _ | None ->
        prerr_endline "--min-wall needs a non-negative number";
        usage ())
    | "--fairness-threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some pct when pct > 0. ->
        t := { !t with Sim_registry.Compare.fairness_threshold = pct };
        parse rest
      | Some _ | None ->
        prerr_endline "--fairness-threshold needs a positive number";
        usage ())
    | "--strict-sections" :: rest ->
      t := { !t with Sim_registry.Compare.strict_sections = true };
      parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "unknown option %s\n" arg;
      usage ()
    | file :: rest ->
      files := file :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ old_file; new_file ] ->
    let resolve s =
      try Sim_registry.Registry.resolve s
      with
      | Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
      | Sim_registry.Cjson.Parse_error msg ->
        Printf.eprintf "%s: %s\n" s msg;
        exit 2
    in
    let old_r = resolve old_file and new_r = resolve new_file in
    let result = Sim_registry.Compare.records !t old_r new_r in
    print_string result.Sim_registry.Compare.text;
    if result.Sim_registry.Compare.regressions > 0 then exit 1
  | _ -> usage ()
