(* Compare two BENCH_*.json timing dumps (see bench/main.ml) and flag
   regressions.

     diff.exe OLD.json NEW.json [--threshold PCT]

   Prints a per-run wall-clock table (old, new, delta) and the same
   for the event-queue micro throughputs when both files carry them.
   Exits 1 if any run's wall time grew — or any micro throughput
   shrank — by more than the threshold (default 25%), so CI can gate
   on it. Runs present in only one file are reported but not gated:
   the bench suite gains and loses entries across PRs. Runs whose old
   wall time is below --min-wall (default 0.25 s) are shown but not
   gated either — at that duration the delta is scheduler noise.

   Dumps from the theft figure additionally carry a "fairness"
   section (per-cell attained/entitled ratios). Unlike wall time
   these are deterministic simulator outputs, so they are gated in
   *both* directions with the much tighter --fairness-threshold
   (default 5%): any drift means the scheduler/accounting behaviour
   changed, which a perf PR must not do silently. A file without the
   section (the figure didn't run) is reported, never gated. *)

(* ----- minimal JSON reader (no external dependency) ----- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | 'r' -> Buffer.add_char buf '\r'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 > n then fail "short \\u escape";
               (* Keep the escape verbatim; ids here are ASCII. *)
               Buffer.add_string buf ("\\u" ^ String.sub s !pos 4);
               pos := !pos + 4
             | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let as_num = function Some (Num f) -> Some f | _ -> None

let as_str = function Some (Str s) -> Some s | _ -> None

let as_arr = function Some (Arr l) -> l | _ -> []

(* ----- BENCH file model ----- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* (id, wall_sec) per figure/ablation run. *)
let runs_of json =
  List.filter_map
    (fun run ->
      match (as_str (member "id" run), as_num (member "wall_sec" run)) with
      | Some id, Some w -> Some (id, w)
      | _ -> None)
    (as_arr (member "runs" json))

(* ("bench backend [pN jN] pendingN", ops_per_sec) per micro
   measurement. The PDES sweep rows (bench/micro.ml) carry pcpus and
   sim_jobs; those go into the key so sweep points at the same pending
   count stay distinct entries. *)
let micro_of json =
  List.filter_map
    (fun m ->
      match
        ( as_str (member "bench" m),
          as_str (member "backend" m),
          as_num (member "pending" m),
          as_num (member "ops_per_sec" m) )
      with
      | Some b, Some k, Some p, Some r ->
        let opt name short =
          match as_num (member name m) with
          | Some v -> Printf.sprintf " %s%.0f" short v
          | None -> ""
        in
        Some
          ( Printf.sprintf "%s %s%s%s %.0f" b k (opt "pcpus" "p")
              (opt "sim_jobs" "j") p,
            r )
      | _ -> None)
    (as_arr (member "micro" json))

(* (id, attained/entitled ratio) per theft-figure cell. *)
let fairness_of json =
  List.filter_map
    (fun m ->
      match (as_str (member "id" m), as_num (member "ratio" m)) with
      | Some id, Some r -> Some (id, r)
      | _ -> None)
    (as_arr (member "fairness" json))

(* ----- comparison ----- *)

let pct old fresh = (fresh -. old) /. old *. 100.

(* [worse] says which direction is a regression: wall time up, or
   throughput down. [gate] can exempt entries (e.g. runs too short to
   time reliably). Returns the number of entries past the
   threshold. *)
let compare_section ~label ~unit ~worse ?(gate = fun _ -> true) ~threshold
    old_entries new_entries =
  let regressions = ref 0 in
  let shown = ref false in
  let header () =
    if not !shown then begin
      shown := true;
      Printf.printf "%s (%s):\n  %-28s %12s %12s %9s\n" label unit "entry" "old"
        "new" "delta"
    end
  in
  List.iter
    (fun (id, old_v) ->
      match List.assoc_opt id new_entries with
      | None ->
        header ();
        Printf.printf "  %-28s %12.3f %12s %9s\n" id old_v "-" "gone"
      | Some new_v ->
        let delta = pct old_v new_v in
        let regressed = worse delta > threshold && gate old_v in
        if regressed then incr regressions;
        header ();
        Printf.printf "  %-28s %12.3f %12.3f %+8.1f%%%s%s\n" id old_v new_v
          delta
          (if regressed then "  <-- REGRESSION" else "")
          (if worse delta > threshold && not (gate old_v) then
             "  (ungated: too short)"
           else ""))
    old_entries;
  List.iter
    (fun (id, new_v) ->
      if not (List.mem_assoc id old_entries) then begin
        header ();
        Printf.printf "  %-28s %12s %12.3f %9s\n" id "-" new_v "new"
      end)
    new_entries;
  if !shown then print_newline ();
  !regressions

(* A whole section missing from one file (e.g. a BENCH dump from
   before that suite existed) is reported, never gated: perf-smoke
   compares across PR boundaries where sections come and go. *)
let section_presence ~label name old_json new_json =
  match (member name old_json, member name new_json) with
  | None, Some _ ->
    Printf.printf "%s: section added in new file (nothing to compare)\n\n"
      label;
    false
  | Some _, None ->
    Printf.printf "%s: section removed in new file (nothing to compare)\n\n"
      label;
    false
  | None, None | Some _, Some _ -> true

let usage () =
  prerr_endline
    "usage: diff.exe OLD.json NEW.json [--threshold PCT] [--min-wall SEC] \
     [--fairness-threshold PCT]";
  exit 2

let () =
  let threshold = ref 25. in
  let min_wall = ref 0.25 in
  let fairness_threshold = ref 5. in
  let files = ref [] in
  let rec go = function
    | [] -> ()
    | "--threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t >= 0. ->
        threshold := t;
        go rest
      | Some _ | None -> usage ())
    | "--min-wall" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t >= 0. ->
        min_wall := t;
        go rest
      | Some _ | None -> usage ())
    | "--fairness-threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t >= 0. ->
        fairness_threshold := t;
        go rest
      | Some _ | None -> usage ())
    | f :: rest ->
      files := f :: !files;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ old_path; new_path ] ->
    let load p =
      match parse (read_file p) with
      | j -> j
      | exception Parse_error msg ->
        Printf.eprintf "%s: %s\n" p msg;
        exit 2
      | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    in
    let old_json = load old_path and new_json = load new_path in
    Printf.printf "bench diff: %s -> %s (threshold %.0f%%)\n\n" old_path
      new_path !threshold;
    let r1 =
      if section_presence ~label:"figure/ablation wall time" "runs" old_json
           new_json
      then
        compare_section ~label:"figure/ablation wall time" ~unit:"sec"
          ~worse:(fun d -> d)
          ~gate:(fun old_v -> old_v >= !min_wall)
          ~threshold:!threshold (runs_of old_json) (runs_of new_json)
      else 0
    in
    let r2 =
      if section_presence ~label:"event-queue micro throughput" "micro"
           old_json new_json
      then
        compare_section ~label:"event-queue micro throughput"
          ~unit:"events/sec"
          ~worse:(fun d -> -.d) ~threshold:!threshold (micro_of old_json)
          (micro_of new_json)
      else 0
    in
    (* Deterministic outputs: drift in either direction is a
       behaviour change, not noise, hence the tight symmetric gate. *)
    let r3 =
      if section_presence ~label:"fairness (attained/entitled)" "fairness"
           old_json new_json
      then
        compare_section ~label:"fairness (attained/entitled)" ~unit:"ratio"
          ~worse:Float.abs ~threshold:!fairness_threshold
          (fairness_of old_json) (fairness_of new_json)
      else 0
    in
    (match (as_num (member "total_wall_sec" old_json),
            as_num (member "total_wall_sec" new_json))
     with
    | Some o, Some n when o > 0. ->
      Printf.printf "total wall: %.3f s -> %.3f s (%+.1f%%)\n" o n (pct o n)
    | _ -> ());
    if r1 + r2 + r3 > 0 then begin
      Printf.printf "\n%d regression(s) beyond threshold\n" (r1 + r2 + r3);
      exit 1
    end
    else print_endline "no regressions beyond threshold"
  | _ -> usage ()
