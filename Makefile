# Convenience targets over dune. `make chaos` is the fault-injection
# smoke: the resilience figure at a small scale plus one chaos run
# that must demote and finish with zero invariant violations.

DUNE ?= dune
SCALE ?= 0.05
SEED ?= 5
JOBS ?= 4

.PHONY: all build test bench bench-compare compare report figures chaos trace \
  check repro clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

bench: build
	$(DUNE) exec bench/main.exe -- -j $(JOBS)

# Differential perf check: a scaled-down figure subset with the heap
# oracle vs the timing wheel, diffed by the registry's regression
# engine (fails on regressions past the threshold). The CI perf-smoke
# job runs this.
bench-compare: build
	BENCH_SCALE=$(SCALE) BENCH_COST_CACHE= $(DUNE) exec bench/main.exe -- \
	  -j $(JOBS) --engine-queue=heap --json bench_heap.json fig1a fig7 fig9
	BENCH_SCALE=$(SCALE) BENCH_COST_CACHE= $(DUNE) exec bench/main.exe -- \
	  -j $(JOBS) --engine-queue=wheel --json bench_wheel.json fig1a fig7 fig9
	$(DUNE) exec bin/asman_cli.exe -- compare bench_heap.json \
	  bench_wheel.json --threshold 50 --strict-sections

# Diff any two runs: registry ids, record files, or raw BENCH dumps.
#   make compare OLD=BENCH_2026-08-06.json NEW=BENCH_2026-08-07.json
compare: build
	@test -n "$(OLD)" -a -n "$(NEW)" || \
	  { echo "usage: make compare OLD=<run> NEW=<run>"; exit 2; }
	$(DUNE) exec bin/asman_cli.exe -- compare $(OLD) $(NEW)

# Render the run registry (runs/) as a self-contained HTML trend page.
report: build
	$(DUNE) exec bin/asman_cli.exe -- report --out report.html

figures: build
	$(DUNE) exec bin/asman_cli.exe -- experiment all --scale $(SCALE) \
	  --seed $(SEED) --jobs $(JOBS)

chaos: build
	$(DUNE) exec bin/asman_cli.exe -- experiment resilience \
	  --scale $(SCALE) --seed $(SEED) --jobs $(JOBS)
	$(DUNE) exec bin/asman_cli.exe -- run --vm lu --vm lu --vm lu \
	  --sched asman --rounds 6 --scale $(SCALE) --seed $(SEED) \
	  --chaos ipi-loss-10 --invariants record

# Trace smoke: fig1a with tracing and metrics on, then validate that
# both exports parse (the trace loads in Perfetto / chrome://tracing).
trace: build
	$(DUNE) exec bin/asman_cli.exe -- experiment fig1a --scale $(SCALE) \
	  --seed $(SEED) --jobs $(JOBS) --trace=trace.json --metrics=metrics.json
	$(DUNE) exec bin/asman_cli.exe -- validate-json trace.json
	$(DUNE) exec bin/asman_cli.exe -- validate-json metrics.json

# SimCheck fuzz: CASES random full-stack scenarios judged by the
# scheduler oracles; failures shrink to minimal JSON repros in the
# working directory. Replay one with `make repro CASE=repro-...json`.
CASES ?= 200

check: build
	$(DUNE) exec bin/asman_cli.exe -- check --cases $(CASES) \
	  --seed $(SEED) --jobs $(JOBS)

repro: build
	@test -n "$(CASE)" || { echo "usage: make repro CASE=repro-....json"; exit 2; }
	$(DUNE) exec bin/asman_cli.exe -- repro $(CASE)

clean:
	$(DUNE) clean
